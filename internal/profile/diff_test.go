package profile

import "testing"

func synthSummary(total int64, fns map[string]int64) *Summary {
	s := &Summary{SampleType: "cpu", Unit: "nanoseconds", Total: total}
	for name, flat := range fns {
		s.Functions = append(s.Functions, FuncStat{
			Name: name, Flat: flat,
			FlatPct: 100 * float64(flat) / float64(total),
		})
	}
	return s
}

// TestDiffDetectsRegression: a function growing from 5% to 30% of the
// profile crosses a 10-point threshold; stable functions don't.
func TestDiffDetectsRegression(t *testing.T) {
	prev := synthSummary(1000, map[string]int64{"hot": 50, "steady": 400})
	cur := synthSummary(1000, map[string]int64{"hot": 300, "steady": 410})
	regs := diffSummaries(TypeCPU, prev, cur, 10)
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly the hot function", regs)
	}
	r := regs[0]
	if r.Function != "hot" || r.Type != TypeCPU {
		t.Fatalf("regression = %+v", r)
	}
	if r.PrevPct != 5 || r.CurPct != 30 {
		t.Fatalf("pcts = %.1f -> %.1f, want 5 -> 30", r.PrevPct, r.CurPct)
	}
}

// TestDiffNewFunctionCountsFromZero: a function absent from the
// previous top-N is treated as 0% there — storming into the profile is
// the regression shape that matters most.
func TestDiffNewFunctionCountsFromZero(t *testing.T) {
	prev := synthSummary(1000, map[string]int64{"steady": 500})
	cur := synthSummary(1000, map[string]int64{"steady": 500, "newcomer": 200})
	regs := diffSummaries(TypeHeap, prev, cur, 10)
	if len(regs) != 1 || regs[0].Function != "newcomer" || regs[0].PrevPct != 0 {
		t.Fatalf("regressions = %+v, want newcomer from 0%%", regs)
	}
}

// TestDiffBelowThresholdQuiet: growth under the threshold produces no
// regressions.
func TestDiffBelowThresholdQuiet(t *testing.T) {
	prev := synthSummary(1000, map[string]int64{"f": 100})
	cur := synthSummary(1000, map[string]int64{"f": 190})
	if regs := diffSummaries(TypeCPU, prev, cur, 10); len(regs) != 0 {
		t.Fatalf("regressions = %+v, want none for a 9-point move", regs)
	}
}

// TestDiffEmptyProfilesQuiet: nil or zero-total summaries (an idle CPU
// window) must never flag regressions — otherwise the first busy
// capture after an idle one would flag every function.
func TestDiffEmptyProfilesQuiet(t *testing.T) {
	busy := synthSummary(1000, map[string]int64{"f": 900})
	empty := &Summary{SampleType: "cpu"}
	for _, tc := range []struct {
		name      string
		prev, cur *Summary
	}{
		{"nil prev", nil, busy},
		{"nil cur", busy, nil},
		{"empty prev", empty, busy},
		{"empty cur", busy, empty},
	} {
		if regs := diffSummaries(TypeCPU, tc.prev, tc.cur, 10); len(regs) != 0 {
			t.Fatalf("%s: regressions = %+v, want none", tc.name, regs)
		}
	}
}

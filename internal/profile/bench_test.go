// bench_test.go quantifies the cost of leaving the continuous profiler
// on in production: the same ingest→detect load is measured with the
// sampler absent and with it cycling at the default production duty
// ratio (10 s per 60 s, compressed to 10 ms per 60 ms so short
// benchtimes still overlap duty windows). make bench-diff gates the
// windows/s delta between the Off and On variants.
package profile_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/profile"
)

func benchService(b *testing.B) (*ingest.Service, []ingest.Window) {
	b.Helper()
	svc, err := ingest.New(ingest.Config{
		Classifier: thresholdClf{},
		Events:     []string{"e0", "e1", "e2", "e3"},
		QueueCap:   1 << 17,
		Registry:   obs.NewRegistry(),
		Bus:        obs.NewBus(),
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	b.Cleanup(cancel)
	svc.Start(ctx)

	pool := make([]ingest.Window, 512)
	for i := range pool {
		lbl := i % 2
		v := 0.1 + 0.8*float64(lbl)
		pool[i] = ingest.Window{
			Endpoint: fmt.Sprintf("ep-%02d", i%16),
			Label:    &lbl,
			Values:   []float64{v, 0.2, 0.3, 0.4},
		}
	}
	return svc, pool
}

func benchProfilerOverhead(b *testing.B, withProfiler bool) {
	const batch, tenants = 512, 4
	svc, pool := benchService(b)
	if withProfiler {
		p := profile.New(profile.Config{
			// Production duty ratio (1/6), compressed 1000x.
			Interval: 60 * time.Millisecond,
			Duty:     10 * time.Millisecond,
			Registry: obs.NewRegistry(),
			Bus:      obs.NewBus(),
		})
		stop := p.Start()
		b.Cleanup(stop)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 0; t < tenants; t++ {
			for {
				if _, err := svc.Enqueue(fmt.Sprintf("tenant-%02d", t), "", pool); err == nil {
					break
				} else {
					var qf *ingest.QueueFullError
					if !errors.As(err, &qf) {
						b.Fatal(err)
					}
					time.Sleep(time.Millisecond)
				}
			}
		}
	}
	deadline := time.Now().Add(2 * time.Minute)
	for !svc.Drained() {
		if time.Now().After(deadline) {
			b.Fatal("ingest did not drain")
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*batch*tenants)/b.Elapsed().Seconds(), "windows/s")
}

func BenchmarkProfilerOverheadOff(b *testing.B) { benchProfilerOverhead(b, false) }
func BenchmarkProfilerOverheadOn(b *testing.B)  { benchProfilerOverhead(b, true) }

// diff.go compares consecutive profile summaries and flags functions
// whose flat share of the profile grew past a threshold — the
// continuous-profiling analogue of the alert engine's metric rules. A
// regression here is a *relative* statement ("this function went from
// 3% to 18% of CPU between two interval captures"), which survives load
// changes better than absolute nanosecond deltas: if traffic doubles,
// every function's absolute cost doubles but the shares stay put.
package profile

import "fmt"

// Regression is one function whose profile share grew past the
// configured threshold between two consecutive captures of a type.
type Regression struct {
	// Type is the profile type the regression was seen in ("cpu", "heap").
	Type string `json:"type"`
	// Function is the regressed function's fully qualified name.
	Function string `json:"function"`
	// PrevPct / CurPct are the flat shares (percent of profile total) in
	// the previous and current capture.
	PrevPct float64 `json:"prev_pct"`
	CurPct  float64 `json:"cur_pct"`
	// CaptureID names the capture the regression was detected in.
	CaptureID string `json:"capture_id"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s profile: %s flat %.1f%% -> %.1f%%",
		r.Type, r.Function, r.PrevPct, r.CurPct)
}

// diffSummaries returns the functions in cur whose flat share grew by
// at least minPts percentage points over prev. Functions absent from
// prev's top-N count as 0% there — a function storming into the top of
// the profile is the regression shape we most want to catch. Empty or
// nil summaries produce no regressions: a capture that parsed to
// nothing (e.g. an idle CPU window with zero samples) must not make
// every function of the next busy capture look like a regression.
func diffSummaries(typ string, prev, cur *Summary, minPts float64) []Regression {
	if prev == nil || cur == nil || prev.Total <= 0 || cur.Total <= 0 {
		return nil
	}
	prevPct := make(map[string]float64, len(prev.Functions))
	for _, f := range prev.Functions {
		prevPct[f.Name] = f.FlatPct
	}
	var out []Regression
	for _, f := range cur.Functions {
		was := prevPct[f.Name]
		if f.FlatPct-was >= minPts {
			out = append(out, Regression{
				Type:     typ,
				Function: f.Name,
				PrevPct:  was,
				CurPct:   f.FlatPct,
			})
		}
	}
	return out
}

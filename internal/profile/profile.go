// Package profile is the continuous, low-overhead profiler embedded in
// every long-running command. A background sampler takes a short CPU
// profile each interval (the duty cycle — e.g. 10 s of profiling out of
// every 60 s keeps steady-state overhead near the profiling cost × 1/6)
// plus instantaneous heap/goroutine/mutex/block snapshots, and stores
// the gzipped pprof blobs with parsed top-N summaries in a
// byte-budgeted drop-oldest ring (see ring.go). Firing alerts and
// online-detector alarms on the event bus trigger immediate pinned
// captures, so the profile from the moment an incident began is
// retrievable at GET /api/v1/profiles long after interval captures have
// been evicted. A diff engine (diff.go) compares consecutive CPU and
// heap summaries and publishes profile.regression bus events when a
// function's flat share grows past a threshold, closing the loop with
// internal/alert and internal/flightrec.
//
// The runtime allows only one CPU profile at a time process-wide, so
// every CPU-profile starter in the program — this sampler, the
// on-demand /debug/pprof/profile endpoint, and the -cpuprofile flag —
// shares the TryAcquireCPU gate; losers skip (sampler) or 409
// (endpoint) instead of racing runtime/pprof's error path.
package profile

import (
	"bytes"
	"fmt"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Profile types stored in the ring.
const (
	TypeCPU       = "cpu"
	TypeHeap      = "heap"
	TypeGoroutine = "goroutine"
	TypeMutex     = "mutex"
	TypeBlock     = "block"
)

// Trigger values recorded on captures.
const (
	// TriggerInterval marks background duty-cycle captures.
	TriggerInterval = "interval"
	// TriggerManual marks captures requested through TriggerCapture
	// without a bus event (e.g. tests, future admin endpoints).
	TriggerManual = "manual"
)

// EventRegression is the bus event type published when the diff engine
// sees a function's flat share grow past the threshold.
const EventRegression = "profile.regression"

// Registry metric names recorded by the profiler.
const (
	// RingBytesMetric gauges the summed blob bytes currently held.
	RingBytesMetric = "profile.ring_bytes"
	// RingCapturesMetric gauges the number of captures currently held.
	RingCapturesMetric = "profile.ring_captures"
	// DroppedMetric counts captures evicted by the byte budget.
	DroppedMetric = "profile.dropped"
	// RegressionsMetric counts diff-engine regressions published.
	RegressionsMetric = "profile.regressions"
	// ErrorsMetric counts failed or skipped capture attempts (CPU gate
	// busy, runtime/pprof errors).
	ErrorsMetric = "profile.errors"
	// CaptureMSMetric is a histogram of capture wall time (snapshot
	// types only — CPU captures deliberately *are* their duty window).
	CaptureMSMetric = "profile.capture_ms"
)

// cpuGate serializes CPU profiling process-wide (runtime/pprof allows
// one). It deliberately lives outside any Profiler instance: the
// -cpuprofile flag and /debug/pprof/profile must contend with the
// sampler through the same gate.
var cpuGate atomic.Bool

// TryAcquireCPU attempts to claim the process-wide CPU-profiling slot.
// It returns false if a CPU profile is already being taken; callers that
// get true must call ReleaseCPU when their profile stops.
func TryAcquireCPU() bool { return cpuGate.CompareAndSwap(false, true) }

// ReleaseCPU releases the slot claimed by TryAcquireCPU.
func ReleaseCPU() { cpuGate.Store(false) }

// Config parameterizes a Profiler. Zero values get defaults.
type Config struct {
	// Interval is the spacing between background capture cycles.
	// Default 60s.
	Interval time.Duration
	// Duty is how long each cycle's CPU profile runs. Default 10s,
	// clamped to Interval.
	Duty time.Duration
	// Budget caps the summed blob bytes held in the ring. Default 8 MiB.
	Budget int64
	// TopN is the summary depth kept per capture. Default 10.
	TopN int
	// RegressionPts is the flat-share growth (percentage points)
	// between consecutive captures that publishes a regression.
	// Default 10.
	RegressionPts float64
	// Registry receives the profiler's metrics. Default obs.DefaultRegistry.
	Registry *obs.Registry
	// Bus is watched for trigger events and receives regression events.
	// Default obs.DefaultBus.
	Bus *obs.Bus
	// Triggers are the bus event types that cause an immediate pinned
	// capture cycle. Default ["alarm", "alert"].
	Triggers []string
	// TriggerCooldown is the minimum spacing between trigger-initiated
	// cycles, so an alarm storm cannot turn the sampler always-on.
	// Default = Interval.
	TriggerCooldown time.Duration
	// Snapshots lists the instantaneous profile types captured each
	// cycle alongside CPU. Default heap, goroutine, mutex, block.
	Snapshots []string
	// Runtime, when set, is refreshed at the start of every cycle so
	// runtime/metrics gauges stay live even in commands without a tsdb
	// scraper driving the collector.
	Runtime *obs.RuntimeCollector
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 60 * time.Second
	}
	if c.Duty <= 0 {
		c.Duty = 10 * time.Second
	}
	if c.Duty > c.Interval {
		c.Duty = c.Interval
	}
	if c.Budget <= 0 {
		c.Budget = 8 << 20
	}
	if c.TopN <= 0 {
		c.TopN = 10
	}
	if c.RegressionPts <= 0 {
		c.RegressionPts = 10
	}
	if c.Registry == nil {
		c.Registry = obs.DefaultRegistry
	}
	if c.Bus == nil {
		c.Bus = obs.DefaultBus
	}
	if c.Triggers == nil {
		c.Triggers = []string{"alarm", "alert"}
	}
	if c.TriggerCooldown <= 0 {
		c.TriggerCooldown = c.Interval
	}
	if c.Snapshots == nil {
		c.Snapshots = []string{TypeHeap, TypeGoroutine, TypeMutex, TypeBlock}
	}
	return c
}

// Profiler owns the capture ring and the background sampler. All
// methods are safe for concurrent use and safe on a nil receiver, so
// callers can wire it unconditionally and leave it nil when disabled.
type Profiler struct {
	cfg Config

	mu       sync.Mutex
	ring     ring
	seq      int64
	prev     map[string]*Summary  // last summary per diffed type
	counts   map[string]int64     // "type|trigger" -> captures
	lastTrig map[string]time.Time // per-reason cooldown clocks
	pending  []string             // queued trigger reasons, deduped
	captures int64
	dropped  int64
	regress  int64
	errors   int64

	// trigSig wakes the run loop when pending gains a reason; a signal
	// arriving mid-duty promotes the in-flight capture instead. Cooldowns
	// are per reason, not global: a once-per-transition "alert" event
	// must not be starved by the high-frequency "alarm" stream.
	trigSig chan struct{}

	mDropped *obs.Counter
	mRegress *obs.Counter
	mErrors  *obs.Counter
	gBytes   *obs.Gauge
	gCount   *obs.Gauge
	hCapture *obs.Histogram
}

// New returns a Profiler; call Run (or Start) to begin sampling.
func New(cfg Config) *Profiler {
	cfg = cfg.withDefaults()
	p := &Profiler{
		cfg:      cfg,
		prev:     map[string]*Summary{},
		counts:   map[string]int64{},
		lastTrig: map[string]time.Time{},
		trigSig:  make(chan struct{}, 1),
	}
	p.ring.budget = cfg.Budget
	p.mDropped = cfg.Registry.Counter(DroppedMetric)
	p.mRegress = cfg.Registry.Counter(RegressionsMetric)
	p.mErrors = cfg.Registry.Counter(ErrorsMetric)
	p.gBytes = cfg.Registry.Gauge(RingBytesMetric)
	p.gCount = cfg.Registry.Gauge(RingCapturesMetric)
	p.hCapture = cfg.Registry.Histogram(CaptureMSMetric,
		[]float64{1, 5, 10, 50, 100, 500, 1000, 5000, 15000})
	return p
}

// Start runs the sampler in a goroutine and returns a stop function
// that blocks until the in-flight cycle (if any) finishes.
func (p *Profiler) Start() (stop func()) {
	if p == nil {
		return func() {}
	}
	done := make(chan struct{})
	quit := make(chan struct{})
	go func() {
		defer close(done)
		p.run(quit)
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(quit) })
		<-done
	}
}

// run is the sampler loop: an interval ticker, immediate trigger
// requests, and a bus watcher feeding those requests.
func (p *Profiler) run(quit <-chan struct{}) {
	sub := p.cfg.Bus.Subscribe(64)
	defer sub.Close()
	go p.watchBus(quit, sub)

	tick := time.NewTicker(p.cfg.Interval)
	defer tick.Stop()
	// First cycle runs immediately so short-lived daemons still get at
	// least one capture set and the Latest() incident embed has data.
	p.cycle(quit, TriggerInterval, false)
	for {
		select {
		case <-quit:
			return
		case <-tick.C:
			p.cycle(quit, TriggerInterval, false)
		case <-p.trigSig:
		}
		// Drain every queued trigger reason — a mid-cycle promotion may
		// have consumed the signal while other reasons were still queued.
		for {
			reason, ok := p.nextPending()
			if !ok {
				break
			}
			p.cycle(quit, reason, true)
		}
	}
}

// nextPending pops the oldest queued trigger reason.
func (p *Profiler) nextPending() (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.pending) == 0 {
		return "", false
	}
	reason := p.pending[0]
	p.pending = p.pending[1:]
	return reason, true
}

func (p *Profiler) watchBus(quit <-chan struct{}, sub *obs.Subscription) {
	for {
		select {
		case <-quit:
			return
		case e, ok := <-sub.Events():
			if !ok {
				return
			}
			for _, t := range p.cfg.Triggers {
				if e.Type == t {
					p.TriggerCapture(e.Type)
					break
				}
			}
		}
	}
}

// TriggerCapture requests an immediate pinned capture cycle attributed
// to reason (e.g. "alert"). It never blocks: requests inside the
// reason's cooldown window, or while the same reason is already queued,
// return false. Cooldowns are tracked per reason so a rare rising-edge
// "alert" is never starved by a storm of per-window "alarm" events. A
// request landing while a CPU capture is in flight promotes that
// capture to the new trigger instead of starting another.
func (p *Profiler) TriggerCapture(reason string) bool {
	if p == nil {
		return false
	}
	if reason == "" {
		reason = TriggerManual
	}
	p.mu.Lock()
	now := time.Now()
	if last, ok := p.lastTrig[reason]; ok && now.Sub(last) < p.cfg.TriggerCooldown {
		p.mu.Unlock()
		return false
	}
	for _, queued := range p.pending {
		if queued == reason {
			p.mu.Unlock()
			return false
		}
	}
	p.lastTrig[reason] = now
	p.pending = append(p.pending, reason)
	p.mu.Unlock()
	select {
	case p.trigSig <- struct{}{}:
	default: // the run loop drains pending fully per signal
	}
	return true
}

// CycleNow runs one full capture cycle synchronously — the testing and
// admin entry point. trigger "" means TriggerInterval.
func (p *Profiler) CycleNow(trigger string) {
	if p == nil {
		return
	}
	if trigger == "" {
		trigger = TriggerInterval
	}
	p.cycle(nil, trigger, trigger != TriggerInterval)
}

// cycle refreshes runtime gauges, takes one CPU duty-window profile and
// the configured snapshots, then runs the diff engine.
func (p *Profiler) cycle(quit <-chan struct{}, trigger string, pinned bool) {
	if p.cfg.Runtime != nil {
		p.cfg.Runtime.Update()
	}
	p.captureCPU(quit, trigger, pinned)
	for _, typ := range p.cfg.Snapshots {
		p.captureSnapshot(typ, trigger, pinned)
	}
}

func (p *Profiler) captureCPU(quit <-chan struct{}, trigger string, pinned bool) {
	if !TryAcquireCPU() {
		// -cpuprofile or an on-demand /debug/pprof/profile holds the
		// slot; skip this window rather than queue behind it.
		p.countError()
		return
	}
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		ReleaseCPU()
		p.countError()
		return
	}
	// Sleep out the duty window, but stay receptive: a trigger request
	// arriving mid-window promotes this capture (it already covers the
	// moment the alert fired), and quit ends the window early so
	// shutdown never waits out a 10 s duty.
	deadline := time.NewTimer(p.cfg.Duty)
	defer deadline.Stop()
wait:
	for {
		select {
		case <-quit:
			break wait
		case <-p.trigSig:
			// The in-flight window already covers the moment the trigger
			// fired; promote it instead of starting another capture.
			if reason, ok := p.nextPending(); ok {
				trigger, pinned = reason, true
			}
		case <-deadline.C:
			break wait
		}
	}
	pprof.StopCPUProfile()
	ReleaseCPU()
	p.store(TypeCPU, trigger, pinned, buf.Bytes())
}

func (p *Profiler) captureSnapshot(typ, trigger string, pinned bool) {
	prof := pprof.Lookup(typ)
	if prof == nil {
		p.countError()
		return
	}
	start := time.Now()
	var buf bytes.Buffer
	if err := prof.WriteTo(&buf, 0); err != nil {
		p.countError()
		return
	}
	p.hCapture.Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
	p.store(typ, trigger, pinned, buf.Bytes())
}

// store parses, rings, metrics, and diffs one finished capture.
func (p *Profiler) store(typ, trigger string, pinned bool, blob []byte) {
	summary, err := ParseSummary(blob, p.cfg.TopN)
	if err != nil {
		summary = nil
		p.countError()
	}

	p.mu.Lock()
	p.seq++
	c := &capture{
		info: CaptureInfo{
			ID:         fmt.Sprintf("%s-%06d", typ, p.seq),
			Type:       typ,
			Trigger:    trigger,
			TimeUnixMS: time.Now().UnixMilli(),
			SizeBytes:  len(blob),
			Pinned:     pinned,
			Summary:    summary,
		},
		blob: blob,
	}
	dropped := p.ring.add(c)
	p.captures++
	p.dropped += int64(dropped)
	p.counts[typ+"|"+trigger]++
	var regs []Regression
	if summary != nil && (typ == TypeCPU || typ == TypeHeap) {
		regs = diffSummaries(typ, p.prev[typ], summary, p.cfg.RegressionPts)
		for i := range regs {
			regs[i].CaptureID = c.info.ID
		}
		p.prev[typ] = summary
		p.regress += int64(len(regs))
	}
	ringBytes, ringCount := p.ring.bytes, len(p.ring.caps)
	p.mu.Unlock()

	p.mDropped.Add(int64(dropped))
	p.gBytes.Set(float64(ringBytes))
	p.gCount.Set(float64(ringCount))
	for _, reg := range regs {
		p.mRegress.Inc()
		p.cfg.Bus.Publish(obs.Event{
			Type:  EventRegression,
			Value: reg.CurPct,
			Msg:   reg.String(),
		})
	}
}

func (p *Profiler) countError() {
	p.mu.Lock()
	p.errors++
	p.mu.Unlock()
	p.mErrors.Inc()
}

// List returns capture metadata newest-first, filtered by type and
// trigger (empty matches all), capped at limit (<=0: all).
func (p *Profiler) List(typ, trigger string, limit int) []CaptureInfo {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ring.list(typ, trigger, limit)
}

// Get returns one capture's metadata and raw gzipped pprof blob.
func (p *Profiler) Get(id string) (CaptureInfo, []byte, bool) {
	if p == nil {
		return CaptureInfo{}, nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if c := p.ring.get(id); c != nil {
		return c.info, c.blob, true
	}
	return CaptureInfo{}, nil, false
}

// Latest returns the newest capture of the given type — the flightrec
// incident embed uses this to attach the profile nearest the trigger.
func (p *Profiler) Latest(typ string) (CaptureInfo, bool) {
	if p == nil {
		return CaptureInfo{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if c := p.ring.latest(typ); c != nil {
		return c.info, true
	}
	return CaptureInfo{}, false
}

// CaptureCount is one (type, trigger) cell of the captures-by-cause
// table, rendered on /metrics as profile_captures_total{type,trigger}.
type CaptureCount struct {
	Type    string `json:"type"`
	Trigger string `json:"trigger"`
	Count   int64  `json:"count"`
}

// Stats is the profiler's self-accounting, served under /api/v1/profiles.
type Stats struct {
	IntervalMS   int64          `json:"interval_ms"`
	DutyMS       int64          `json:"duty_ms"`
	BudgetBytes  int64          `json:"budget_bytes"`
	RingBytes    int64          `json:"ring_bytes"`
	RingCaptures int            `json:"ring_captures"`
	Captures     int64          `json:"captures"`
	Dropped      int64          `json:"dropped"`
	Regressions  int64          `json:"regressions"`
	Errors       int64          `json:"errors"`
	ByCause      []CaptureCount `json:"by_cause,omitempty"`
}

// Stats returns a frozen view of the profiler's accounting. ByCause is
// sorted by (type, trigger) so renderings are byte-stable.
func (p *Profiler) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Stats{
		IntervalMS:   p.cfg.Interval.Milliseconds(),
		DutyMS:       p.cfg.Duty.Milliseconds(),
		BudgetBytes:  p.cfg.Budget,
		RingBytes:    p.ring.bytes,
		RingCaptures: len(p.ring.caps),
		Captures:     p.captures,
		Dropped:      p.dropped,
		Regressions:  p.regress,
		Errors:       p.errors,
	}
	for key, n := range p.counts {
		var typ, trig string
		for i := 0; i < len(key); i++ {
			if key[i] == '|' {
				typ, trig = key[:i], key[i+1:]
				break
			}
		}
		s.ByCause = append(s.ByCause, CaptureCount{Type: typ, Trigger: trig, Count: n})
	}
	sort.Slice(s.ByCause, func(i, j int) bool {
		if s.ByCause[i].Type != s.ByCause[j].Type {
			return s.ByCause[i].Type < s.ByCause[j].Type
		}
		return s.ByCause[i].Trigger < s.ByCause[j].Trigger
	})
	return s
}

// Package quality is the model-health half of the observability stack:
// where internal/obs and internal/telemetry answer "is the process
// healthy?", this package answers "is the detector still right, and is
// the input still in-distribution?".
//
// It has two instruments:
//
//   - Scoreboard: a streaming detection scoreboard over labeled replay —
//     sliding-window confusion matrices, per-class precision/recall/F1
//     and false-positive rate, score-distribution histograms, and a
//     calibration (reliability) summary, exported as obs gauges and the
//     telemetry server's /quality endpoint.
//
//   - DriftDetector: per-counter baseline sketches (mean/std plus
//     fixed-bin histograms) captured at train time, compared online
//     against live HPC windows via the Population Stability Index and a
//     Kolmogorov–Smirnov statistic, exported as obs gauges, drift
//     events on the bus, and the /drift endpoint.
//
// Both accumulate into an epoch ring: Observe adds commutative counts to
// the current epoch and Advance rotates the ring, so the sliding window
// is the aggregate of the last Epochs rotations. Because every update is
// a commutative sum, concurrent observers (the parallel monitoring pool)
// produce bit-identical snapshots at any worker count and completion
// order — the same determinism contract the rest of the pipeline keeps.
//
// The need for this layer is the central lesson of the adversarial HMD
// literature: Kuruvila et al. show hardware malware detector accuracy
// collapses silently when the HPC feature distribution shifts from the
// one trained on, and anomaly-detection formulations (Garcia-Serrano)
// frame detection itself as monitoring deviation from a learned
// baseline. A production detector therefore has to watch its own inputs
// and outputs, not just its process.
package quality

import (
	"fmt"
	"sync"

	"repro/internal/ml/eval"
	"repro/internal/obs"
)

// Registry gauge names exported by the Scoreboard (updated on Advance).
const (
	AccuracyMetric       = "quality.accuracy"
	PrecisionMetric      = "quality.precision"
	RecallMetric         = "quality.recall"
	F1Metric             = "quality.f1"
	FPRMetric            = "quality.fpr"
	ECEMetric            = "quality.ece"
	WindowObservedMetric = "quality.window_observed"
	// ObservationsMetric counts every labeled prediction ever scored.
	ObservationsMetric = "quality.observations"
)

// Config configures a Scoreboard.
type Config struct {
	// Epochs is the sliding-window length in Advance rotations
	// (default 8): the scoreboard reports over the last Epochs epochs,
	// including the one currently filling.
	Epochs int
	// ScoreBins is the number of equal-width bins over [0,1] for the
	// score histograms and calibration summary (default 10).
	ScoreBins int
	// NumClasses is the label arity (default 2, the binary detector).
	NumClasses int
	// ClassNames maps labels to display names (default "class <i>",
	// with ["benign","malware"] for the binary case).
	ClassNames []string
	// Registry receives the exported gauges (default obs.DefaultRegistry).
	Registry *obs.Registry
}

func (c *Config) fillDefaults() {
	if c.Epochs <= 0 {
		c.Epochs = 8
	}
	if c.ScoreBins <= 0 {
		c.ScoreBins = 10
	}
	if c.NumClasses < 2 {
		c.NumClasses = 2
	}
	if len(c.ClassNames) == 0 {
		if c.NumClasses == 2 {
			c.ClassNames = []string{"benign", "malware"}
		} else {
			for i := 0; i < c.NumClasses; i++ {
				c.ClassNames = append(c.ClassNames, fmt.Sprintf("class %d", i))
			}
		}
	}
	if c.Registry == nil {
		c.Registry = obs.DefaultRegistry
	}
}

// epoch is one rotation's worth of commutative counts.
type epoch struct {
	conf *eval.Confusion
	// scoreHist[class][bin] counts scores of windows whose ACTUAL label
	// is class — the two distributions whose separation is the detector's
	// margin, and whose collapse is the first sign of decay.
	scoreHist [][]int64
	// Calibration bins over the reported score: count, score mass, and
	// positives (actual == positive class for binary boards; correct
	// predictions otherwise).
	calN     []int64
	calScore []float64
	calPos   []int64
	n        int64
}

func newEpoch(classes, bins int) *epoch {
	e := &epoch{
		conf:     eval.NewConfusion(classes),
		calN:     make([]int64, bins),
		calScore: make([]float64, bins),
		calPos:   make([]int64, bins),
	}
	for i := 0; i < classes; i++ {
		e.scoreHist = append(e.scoreHist, make([]int64, bins))
	}
	return e
}

func (e *epoch) reset() {
	for _, row := range e.conf.Counts {
		for i := range row {
			row[i] = 0
		}
	}
	for _, h := range e.scoreHist {
		for i := range h {
			h[i] = 0
		}
	}
	for i := range e.calN {
		e.calN[i], e.calScore[i], e.calPos[i] = 0, 0, 0
	}
	e.n = 0
}

// Scoreboard is the streaming detection scoreboard. All methods are safe
// for concurrent use; Observe is called from the parallel monitoring
// pool's workers.
type Scoreboard struct {
	mu        sync.Mutex
	cfg       Config
	epochs    []*epoch
	cur       int
	rotations int64
	observed  int64

	mObserved                                *obs.Counter
	gAcc, gPrec, gRec, gF1, gFPR, gECE, gWin *obs.Gauge
}

// NewScoreboard builds a scoreboard and registers its gauges.
func NewScoreboard(cfg Config) *Scoreboard {
	cfg.fillDefaults()
	s := &Scoreboard{cfg: cfg}
	for i := 0; i < cfg.Epochs; i++ {
		s.epochs = append(s.epochs, newEpoch(cfg.NumClasses, cfg.ScoreBins))
	}
	r := cfg.Registry
	s.mObserved = r.Counter(ObservationsMetric)
	s.gAcc = r.Gauge(AccuracyMetric)
	s.gPrec = r.Gauge(PrecisionMetric)
	s.gRec = r.Gauge(RecallMetric)
	s.gF1 = r.Gauge(F1Metric)
	s.gFPR = r.Gauge(FPRMetric)
	s.gECE = r.Gauge(ECEMetric)
	s.gWin = r.Gauge(WindowObservedMetric)
	return s
}

// scoreBin maps a score in [0,1] onto a histogram bin, clamping strays.
func (s *Scoreboard) scoreBin(score float64) int {
	bin := int(score * float64(s.cfg.ScoreBins))
	if bin < 0 {
		bin = 0
	}
	if bin >= s.cfg.ScoreBins {
		bin = s.cfg.ScoreBins - 1
	}
	return bin
}

// Observe scores one labeled prediction. score is the model's reported
// probability for the positive (malware) class on binary boards, or its
// confidence in the predicted class otherwise; callers without
// probabilities pass the 0/1 verdict, which degrades calibration to a
// two-spike reliability curve but keeps the confusion metrics exact.
// Labels outside [0, NumClasses) are ignored.
func (s *Scoreboard) Observe(actual, predicted int, score float64) {
	if s == nil || actual < 0 || actual >= s.cfg.NumClasses ||
		predicted < 0 || predicted >= s.cfg.NumClasses {
		return
	}
	pos := actual == predicted
	if s.cfg.NumClasses == 2 {
		pos = actual == 1
	}
	bin := s.scoreBin(score)
	s.mu.Lock()
	e := s.epochs[s.cur]
	e.conf.Observe(actual, predicted)
	e.scoreHist[actual][bin]++
	e.calN[bin]++
	e.calScore[bin] += score
	if pos {
		e.calPos[bin]++
	}
	e.n++
	s.observed++
	s.mu.Unlock()
	s.mObserved.Inc()
}

// Advance rotates the epoch ring, evicting the oldest epoch, and
// refreshes the exported gauges from the new sliding window. The serve
// daemon calls it once per replay round; rotation is the only form of
// eviction, so within-epoch observation order never matters.
func (s *Scoreboard) Advance() {
	s.mu.Lock()
	s.cur = (s.cur + 1) % len(s.epochs)
	s.epochs[s.cur].reset()
	s.rotations++
	snap := s.snapshotLocked()
	s.mu.Unlock()
	s.export(snap)
}

func (s *Scoreboard) export(q QualitySnapshot) {
	s.gAcc.Set(q.Accuracy)
	s.gPrec.Set(q.Precision)
	s.gRec.Set(q.Recall)
	s.gF1.Set(q.F1)
	s.gFPR.Set(q.FPR)
	s.gECE.Set(q.ECE)
	s.gWin.Set(float64(q.WindowObserved))
}

// ClassMetrics is one class's row of the scoreboard.
type ClassMetrics struct {
	Class     string  `json:"class"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	FPR       float64 `json:"fpr"`
	Support   int     `json:"support"`
}

// ScoreHistogram is the score distribution of windows of one actual class.
type ScoreHistogram struct {
	Class  string  `json:"class"`
	Counts []int64 `json:"counts"`
}

// CalibrationBin is one reliability-diagram bucket: over windows whose
// reported score fell in [Lo,Hi), the mean score the model claimed versus
// the rate at which the positive outcome actually held.
type CalibrationBin struct {
	Lo           float64 `json:"lo"`
	Hi           float64 `json:"hi"`
	Count        int64   `json:"count"`
	MeanScore    float64 `json:"mean_score"`
	PositiveRate float64 `json:"positive_rate"`
}

// QualitySnapshot is the frozen scoreboard state over the sliding window,
// served as JSON on /quality. All fields derive from commutative counts,
// so snapshots are deterministic at any observer parallelism.
type QualitySnapshot struct {
	// Observed counts every labeled prediction ever; WindowObserved only
	// those inside the current sliding window.
	Observed       int64 `json:"observed"`
	WindowObserved int64 `json:"window_observed"`
	Epochs         int   `json:"epochs"`
	Rotations      int64 `json:"rotations"`

	Classes   []string       `json:"classes"`
	Confusion [][]int        `json:"confusion"` // Confusion[actual][predicted]
	PerClass  []ClassMetrics `json:"per_class"`
	Accuracy  float64        `json:"accuracy"`
	MacroF1   float64        `json:"macro_f1"`

	// Headline binary metrics of the positive (last-named, malware)
	// class; for multiclass boards these are macro averages.
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	FPR       float64 `json:"fpr"`

	ScoreBins       int              `json:"score_bins"`
	ScoreHistograms []ScoreHistogram `json:"score_histograms"`
	Calibration     []CalibrationBin `json:"calibration"`
	// ECE is the expected calibration error: the support-weighted mean
	// |claimed score − observed positive rate| across bins.
	ECE float64 `json:"ece"`
}

// Snapshot freezes the sliding-window scoreboard.
func (s *Scoreboard) Snapshot() QualitySnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

func (s *Scoreboard) snapshotLocked() QualitySnapshot {
	k, bins := s.cfg.NumClasses, s.cfg.ScoreBins
	conf := eval.NewConfusion(k)
	hist := make([][]int64, k)
	for i := range hist {
		hist[i] = make([]int64, bins)
	}
	calN := make([]int64, bins)
	calScore := make([]float64, bins)
	calPos := make([]int64, bins)
	var windowN int64
	for _, e := range s.epochs {
		conf.Merge(e.conf)
		for c := 0; c < k; c++ {
			for b := 0; b < bins; b++ {
				hist[c][b] += e.scoreHist[c][b]
			}
		}
		for b := 0; b < bins; b++ {
			calN[b] += e.calN[b]
			calScore[b] += e.calScore[b]
			calPos[b] += e.calPos[b]
		}
		windowN += e.n
	}

	q := QualitySnapshot{
		Observed:       s.observed,
		WindowObserved: windowN,
		Epochs:         len(s.epochs),
		Rotations:      s.rotations,
		Classes:        append([]string{}, s.cfg.ClassNames...),
		Accuracy:       conf.Accuracy(),
		MacroF1:        conf.MacroF1(),
		ScoreBins:      bins,
	}
	q.Confusion = make([][]int, k)
	for a := 0; a < k; a++ {
		q.Confusion[a] = append([]int{}, conf.Counts[a]...)
	}
	for c := 0; c < k; c++ {
		support := 0
		for _, v := range conf.Counts[c] {
			support += v
		}
		q.PerClass = append(q.PerClass, ClassMetrics{
			Class:     s.cfg.ClassNames[c],
			Precision: conf.Precision(c),
			Recall:    conf.Recall(c),
			F1:        conf.F1(c),
			FPR:       conf.FalsePositiveRate(c),
			Support:   support,
		})
		q.ScoreHistograms = append(q.ScoreHistograms, ScoreHistogram{
			Class:  s.cfg.ClassNames[c],
			Counts: append([]int64{}, hist[c]...),
		})
	}
	if k == 2 {
		q.Precision = conf.Precision(1)
		q.Recall = conf.Recall(1)
		q.F1 = conf.F1(1)
		q.FPR = conf.FalsePositiveRate(1)
	} else {
		var p, r, fpr float64
		for c := 0; c < k; c++ {
			p += conf.Precision(c)
			r += conf.Recall(c)
			fpr += conf.FalsePositiveRate(c)
		}
		q.Precision, q.Recall, q.FPR = p/float64(k), r/float64(k), fpr/float64(k)
		q.F1 = q.MacroF1
	}

	width := 1 / float64(bins)
	var eceSum float64
	for b := 0; b < bins; b++ {
		cb := CalibrationBin{Lo: float64(b) * width, Hi: float64(b+1) * width, Count: calN[b]}
		if calN[b] > 0 {
			cb.MeanScore = calScore[b] / float64(calN[b])
			cb.PositiveRate = float64(calPos[b]) / float64(calN[b])
			diff := cb.MeanScore - cb.PositiveRate
			if diff < 0 {
				diff = -diff
			}
			eceSum += diff * float64(calN[b])
		}
		q.Calibration = append(q.Calibration, cb)
	}
	if windowN > 0 {
		q.ECE = eceSum / float64(windowN)
	}
	return q
}

package quality

import (
	"math"
	"sync"
	"testing"

	"repro/internal/obs"
)

func feed(s *Scoreboard) {
	// actual 0 (benign): 8 TN (low scores), 2 FP (high scores);
	// actual 1 (malware): 6 TP (high scores), 4 FN (low scores).
	for i := 0; i < 8; i++ {
		s.Observe(0, 0, 0.05)
	}
	for i := 0; i < 2; i++ {
		s.Observe(0, 1, 0.95)
	}
	for i := 0; i < 6; i++ {
		s.Observe(1, 1, 0.95)
	}
	for i := 0; i < 4; i++ {
		s.Observe(1, 0, 0.05)
	}
}

func TestScoreboardMetrics(t *testing.T) {
	r := obs.NewRegistry()
	s := NewScoreboard(Config{Registry: r})
	feed(s)
	q := s.Snapshot()
	if q.Observed != 20 || q.WindowObserved != 20 {
		t.Fatalf("observed %d / window %d, want 20/20", q.Observed, q.WindowObserved)
	}
	if math.Abs(q.Accuracy-0.7) > 1e-12 {
		t.Errorf("accuracy = %v, want 0.7", q.Accuracy)
	}
	// Headline metrics are the malware (class 1) row.
	if math.Abs(q.Precision-0.75) > 1e-12 { // 6/8
		t.Errorf("precision = %v, want 0.75", q.Precision)
	}
	if math.Abs(q.Recall-0.6) > 1e-12 {
		t.Errorf("recall = %v, want 0.6", q.Recall)
	}
	if math.Abs(q.FPR-0.2) > 1e-12 { // 2/10 benign flagged
		t.Errorf("fpr = %v, want 0.2", q.FPR)
	}
	if q.Confusion[0][0] != 8 || q.Confusion[0][1] != 2 ||
		q.Confusion[1][0] != 4 || q.Confusion[1][1] != 6 {
		t.Errorf("confusion = %v", q.Confusion)
	}
	if len(q.PerClass) != 2 || q.PerClass[1].Class != "malware" || q.PerClass[1].Support != 10 {
		t.Errorf("per-class rows = %+v", q.PerClass)
	}
	// Histograms are keyed by ACTUAL class: benign mass sits low except
	// the 2 false positives; malware mass sits high except the 4 misses.
	if h := q.ScoreHistograms[0].Counts; h[0] != 8 || h[9] != 2 {
		t.Errorf("benign score histogram = %v", h)
	}
	if h := q.ScoreHistograms[1].Counts; h[0] != 4 || h[9] != 6 {
		t.Errorf("malware score histogram = %v", h)
	}
	// Calibration: low bin holds 12 windows at score 0.05 of which 4 are
	// actually malware → |0.05 - 4/12|; top bin 8 windows at 0.95, 6 malware.
	lo, hi := q.Calibration[0], q.Calibration[9]
	if lo.Count != 12 || math.Abs(lo.PositiveRate-4.0/12) > 1e-12 {
		t.Errorf("low calibration bin = %+v", lo)
	}
	if hi.Count != 8 || math.Abs(hi.MeanScore-0.95) > 1e-12 {
		t.Errorf("high calibration bin = %+v", hi)
	}
	wantECE := (math.Abs(0.05-4.0/12)*12 + math.Abs(0.95-0.75)*8) / 20
	if math.Abs(q.ECE-wantECE) > 1e-12 {
		t.Errorf("ECE = %v, want %v", q.ECE, wantECE)
	}
}

func TestScoreboardSlidingWindow(t *testing.T) {
	r := obs.NewRegistry()
	s := NewScoreboard(Config{Epochs: 2, Registry: r})
	feed(s)
	s.Advance() // epoch 2 of 2: window still holds everything
	if q := s.Snapshot(); q.WindowObserved != 20 {
		t.Fatalf("window after 1 rotation = %d, want 20", q.WindowObserved)
	}
	s.Advance() // original epoch evicted
	q := s.Snapshot()
	if q.WindowObserved != 0 || q.Observed != 20 {
		t.Fatalf("window %d / observed %d after eviction, want 0/20", q.WindowObserved, q.Observed)
	}
	if q.Accuracy != 0 || q.Rotations != 2 {
		t.Fatalf("empty-window accuracy %v rotations %d", q.Accuracy, q.Rotations)
	}
	// Advance exports gauges to the registry.
	if got := r.Gauge(WindowObservedMetric).Value(); got != 0 {
		t.Errorf("window gauge = %v", got)
	}
	if got := r.Counter(ObservationsMetric).Value(); got != 20 {
		t.Errorf("observations counter = %d, want 20", got)
	}
}

func TestScoreboardGaugesExported(t *testing.T) {
	r := obs.NewRegistry()
	s := NewScoreboard(Config{Registry: r})
	feed(s)
	s.Advance()
	if got := r.Gauge(AccuracyMetric).Value(); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("accuracy gauge = %v, want 0.7", got)
	}
	if got := r.Gauge(F1Metric).Value(); got <= 0 {
		t.Errorf("f1 gauge = %v, want > 0", got)
	}
}

func TestScoreboardIgnoresBadLabels(t *testing.T) {
	s := NewScoreboard(Config{Registry: obs.NewRegistry()})
	s.Observe(-1, 0, 0.5)
	s.Observe(0, 5, 0.5)
	s.Observe(2, 0, 0.5)
	if q := s.Snapshot(); q.Observed != 0 {
		t.Fatalf("observed %d out-of-range labels", q.Observed)
	}
	// Scores outside [0,1] clamp into the edge bins rather than panicking.
	s.Observe(1, 1, 1.5)
	s.Observe(0, 0, -0.5)
	q := s.Snapshot()
	if q.ScoreHistograms[1].Counts[9] != 1 || q.ScoreHistograms[0].Counts[0] != 1 {
		t.Fatalf("clamped scores landed wrong: %v", q.ScoreHistograms)
	}
	var nils *Scoreboard
	nils.Observe(0, 0, 0.5) // nil-safe
}

// TestScoreboardDeterministicConcurrent pins the parallelism contract:
// the same observations arriving from many goroutines in any order
// produce the same snapshot as a serial feed, because every update is a
// commutative count.
func TestScoreboardDeterministicConcurrent(t *testing.T) {
	serial := NewScoreboard(Config{Registry: obs.NewRegistry()})
	for i := 0; i < 400; i++ {
		serial.Observe(i%2, (i/2)%2, float64(i%10)/10)
	}
	concurrent := NewScoreboard(Config{Registry: obs.NewRegistry()})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < 400; i += 8 {
				concurrent.Observe(i%2, (i/2)%2, float64(i%10)/10)
			}
		}(w)
	}
	wg.Wait()
	a, b := serial.Snapshot(), concurrent.Snapshot()
	if a.Accuracy != b.Accuracy || a.F1 != b.F1 || a.ECE != b.ECE ||
		a.WindowObserved != b.WindowObserved {
		t.Fatalf("serial %+v != concurrent %+v", a, b)
	}
	for c := range a.Confusion {
		for p := range a.Confusion[c] {
			if a.Confusion[c][p] != b.Confusion[c][p] {
				t.Fatalf("confusion diverged: %v vs %v", a.Confusion, b.Confusion)
			}
		}
	}
}

func TestScoreboardMulticlass(t *testing.T) {
	s := NewScoreboard(Config{NumClasses: 3, Registry: obs.NewRegistry()})
	s.Observe(0, 0, 0.9)
	s.Observe(1, 1, 0.8)
	s.Observe(2, 1, 0.6)
	q := s.Snapshot()
	if len(q.Classes) != 3 || q.Classes[2] != "class 2" {
		t.Fatalf("classes = %v", q.Classes)
	}
	if q.F1 != q.MacroF1 {
		t.Fatalf("multiclass headline F1 %v != macro %v", q.F1, q.MacroF1)
	}
}

package quality

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/obs"
)

// Registry metric names exported by the DriftDetector. Per-feature PSI
// and KS gauges are named "drift.psi.<event>" / "drift.ks.<event>".
const (
	DriftingMetric      = "drift.features_drifting"
	DriftObservedMetric = "drift.windows_observed"
	psiMetricPrefix     = "drift.psi."
	ksMetricPrefix      = "drift.ks."
)

// Event types published to the bus when a feature's PSI crosses (or
// recovers below) the alert threshold.
const (
	EventDrift         = "drift"
	EventDriftResolved = "drift_resolved"
)

// FeatureBaseline is the train-time sketch of one HPC event's
// distribution: moments for a cheap human-readable summary, and a
// fixed-bin histogram that PSI and KS compare live traffic against.
type FeatureBaseline struct {
	Name string `json:"name"`
	// Count is the number of training windows sketched.
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Std   float64 `json:"std"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	// Edges holds the Bins+1 bin boundaries; live values outside
	// [Edges[0], Edges[Bins]] clamp into the first/last bin, so a pure
	// range shift still lands all its mass in an edge bin and scores
	// maximal PSI rather than escaping the sketch.
	Edges  []float64 `json:"edges"`
	Counts []int64   `json:"counts"`
}

// Baseline is the full train-time sketch, one FeatureBaseline per HPC
// event, embedded into the run manifest so every deployed model carries
// the distribution it was fitted on.
type Baseline struct {
	Bins     int               `json:"bins"`
	Rows     int               `json:"rows"`
	Features []FeatureBaseline `json:"features"`
}

// CaptureBaseline sketches the training matrix: names[i] labels column i
// of rows. bins <= 0 defaults to 16.
func CaptureBaseline(names []string, rows [][]float64, bins int) (*Baseline, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("quality: empty training set")
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("quality: no feature names")
	}
	for i, row := range rows {
		if len(row) != len(names) {
			return nil, fmt.Errorf("quality: row %d has %d features, want %d",
				i, len(row), len(names))
		}
	}
	if bins <= 0 {
		bins = 16
	}
	b := &Baseline{Bins: bins, Rows: len(rows)}
	for f, name := range names {
		fb := FeatureBaseline{Name: name, Count: int64(len(rows))}
		var sum, sumSq float64
		fb.Min, fb.Max = rows[0][f], rows[0][f]
		for _, row := range rows {
			v := row[f]
			sum += v
			sumSq += v * v
			if v < fb.Min {
				fb.Min = v
			}
			if v > fb.Max {
				fb.Max = v
			}
		}
		n := float64(len(rows))
		fb.Mean = sum / n
		if variance := sumSq/n - fb.Mean*fb.Mean; variance > 0 {
			fb.Std = math.Sqrt(variance)
		}
		lo, hi := fb.Min, fb.Max
		if hi <= lo {
			// Degenerate (constant) feature: a unit-width bin still lets
			// PSI flag any live value that moves off the constant.
			hi = lo + 1
		}
		fb.Edges = make([]float64, bins+1)
		for i := 0; i <= bins; i++ {
			fb.Edges[i] = lo + (hi-lo)*float64(i)/float64(bins)
		}
		fb.Counts = make([]int64, bins)
		for _, row := range rows {
			fb.Counts[binFor(fb.Edges, row[f])]++
		}
		b.Features = append(b.Features, fb)
	}
	return b, nil
}

// binFor locates v's bin by its edges, clamping out-of-range values into
// the first/last bin.
func binFor(edges []float64, v float64) int {
	bins := len(edges) - 1
	// SearchFloat64s returns the first edge >= v; bin i covers
	// [edges[i], edges[i+1]).
	i := sort.SearchFloat64s(edges, v)
	if i > 0 {
		i--
	}
	if i >= bins {
		i = bins - 1
	}
	return i
}

// BaselineFromJSON decodes a baseline embedded in a run manifest's
// Baseline field.
func BaselineFromJSON(raw []byte) (*Baseline, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("quality: empty baseline")
	}
	b := &Baseline{}
	if err := json.Unmarshal(raw, b); err != nil {
		return nil, fmt.Errorf("quality: decoding baseline: %w", err)
	}
	if len(b.Features) == 0 {
		return nil, fmt.Errorf("quality: baseline has no features")
	}
	return b, nil
}

// JSON encodes the baseline for embedding into a manifest.
func (b *Baseline) JSON() (json.RawMessage, error) { return json.Marshal(b) }

// DriftConfig configures a DriftDetector.
type DriftConfig struct {
	// Epochs is the sliding-window length in Advance rotations (default 8).
	Epochs int
	// PSIAlert is the PSI above which a feature counts as drifting and a
	// drift event is published (default 0.25 — the conventional "major
	// shift" threshold; 0.1–0.25 is the usual "investigate" band).
	PSIAlert float64
	// Registry receives the exported gauges (default obs.DefaultRegistry).
	Registry *obs.Registry
	// Bus receives drift/drift_resolved events (default obs.DefaultBus).
	Bus *obs.Bus
}

// DriftDetector compares the live per-feature distributions of monitored
// windows against a train-time Baseline. All methods are safe for
// concurrent use.
type DriftDetector struct {
	mu   sync.Mutex
	base *Baseline
	cfg  DriftConfig
	// counts[epoch][feature][bin], sums/sumSqs[epoch][feature]: the live
	// sliding-window sketch, commutative like the scoreboard's.
	counts   [][][]int64
	sums     [][]float64
	sumSqs   [][]float64
	ns       []int64
	cur      int
	observed int64
	drifting []bool

	mObserved *obs.Counter
	gDrifting *obs.Gauge
	gPSI      []*obs.Gauge
	gKS       []*obs.Gauge
}

// NewDriftDetector builds a detector over a captured baseline and
// registers its gauges.
func NewDriftDetector(base *Baseline, cfg DriftConfig) (*DriftDetector, error) {
	if base == nil || len(base.Features) == 0 {
		return nil, fmt.Errorf("quality: nil or empty baseline")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 8
	}
	if cfg.PSIAlert <= 0 {
		cfg.PSIAlert = 0.25
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.DefaultRegistry
	}
	if cfg.Bus == nil {
		cfg.Bus = obs.DefaultBus
	}
	d := &DriftDetector{
		base:     base,
		cfg:      cfg,
		drifting: make([]bool, len(base.Features)),
		ns:       make([]int64, cfg.Epochs),
	}
	for e := 0; e < cfg.Epochs; e++ {
		perFeature := make([][]int64, len(base.Features))
		for f := range perFeature {
			perFeature[f] = make([]int64, base.Bins)
		}
		d.counts = append(d.counts, perFeature)
		d.sums = append(d.sums, make([]float64, len(base.Features)))
		d.sumSqs = append(d.sumSqs, make([]float64, len(base.Features)))
	}
	d.mObserved = cfg.Registry.Counter(DriftObservedMetric)
	d.gDrifting = cfg.Registry.Gauge(DriftingMetric)
	for _, fb := range base.Features {
		d.gPSI = append(d.gPSI, cfg.Registry.Gauge(psiMetricPrefix+fb.Name))
		d.gKS = append(d.gKS, cfg.Registry.Gauge(ksMetricPrefix+fb.Name))
	}
	return d, nil
}

// Observe sketches one live window's feature vector. Vectors whose length
// does not match the baseline are ignored (a misconfigured event set is a
// setup error the caller surfaces elsewhere, not a drift signal).
func (d *DriftDetector) Observe(vals []float64) {
	if d == nil || len(vals) != len(d.base.Features) {
		return
	}
	d.mu.Lock()
	for f, v := range vals {
		d.counts[d.cur][f][binFor(d.base.Features[f].Edges, v)]++
		d.sums[d.cur][f] += v
		d.sumSqs[d.cur][f] += v * v
	}
	d.ns[d.cur]++
	d.observed++
	d.mu.Unlock()
	d.mObserved.Inc()
}

// Advance rotates the epoch ring, recomputes PSI/KS per feature over the
// new window, refreshes the gauges, and publishes drift (or recovery)
// events for features whose state changed.
func (d *DriftDetector) Advance() {
	d.mu.Lock()
	d.cur = (d.cur + 1) % d.cfg.Epochs
	for f := range d.counts[d.cur] {
		for b := range d.counts[d.cur][f] {
			d.counts[d.cur][f][b] = 0
		}
		d.sums[d.cur][f] = 0
		d.sumSqs[d.cur][f] = 0
	}
	d.ns[d.cur] = 0
	snap := d.snapshotLocked()
	transitions := make([]obs.Event, 0, 2)
	for f, fd := range snap.Features {
		was := d.drifting[f]
		d.drifting[f] = fd.Drifting
		if fd.Drifting && !was {
			transitions = append(transitions, obs.Event{
				Type:  EventDrift,
				Msg:   fmt.Sprintf("%s: psi %.3f over threshold %.3g (ks %.3f)", fd.Name, fd.PSI, d.cfg.PSIAlert, fd.KS),
				Value: fd.PSI,
			})
		} else if !fd.Drifting && was {
			transitions = append(transitions, obs.Event{
				Type:  EventDriftResolved,
				Msg:   fmt.Sprintf("%s: psi %.3f back under threshold %.3g", fd.Name, fd.PSI, d.cfg.PSIAlert),
				Value: fd.PSI,
			})
		}
	}
	d.mu.Unlock()

	for f, fd := range snap.Features {
		d.gPSI[f].Set(fd.PSI)
		d.gKS[f].Set(fd.KS)
	}
	d.gDrifting.Set(float64(snap.Drifting))
	for _, e := range transitions {
		d.cfg.Bus.Publish(e)
		if e.Type == EventDrift {
			obs.Log().Warn("feature drift detected", "detail", e.Msg)
		} else {
			obs.Log().Info("feature drift resolved", "detail", e.Msg)
		}
	}
}

// FeatureDrift is one HPC event's live-vs-baseline comparison.
type FeatureDrift struct {
	Name string `json:"name"`
	// PSI is the Population Stability Index between the baseline
	// histogram and the live sliding window ( <0.1 stable, 0.1–0.25
	// shifting, >0.25 major shift).
	PSI float64 `json:"psi"`
	// KS is the Kolmogorov–Smirnov statistic: the maximum CDF gap, in
	// [0,1], over the shared bin edges.
	KS       float64 `json:"ks"`
	Drifting bool    `json:"drifting"`
	BaseMean float64 `json:"base_mean"`
	BaseStd  float64 `json:"base_std"`
	LiveMean float64 `json:"live_mean"`
	LiveStd  float64 `json:"live_std"`
}

// DriftSnapshot is the /drift payload: every feature's PSI/KS against the
// train-time baseline, over the live sliding window.
type DriftSnapshot struct {
	Observed       int64          `json:"observed"`
	WindowObserved int64          `json:"window_observed"`
	Bins           int            `json:"bins"`
	PSIAlert       float64        `json:"psi_alert"`
	Drifting       int            `json:"drifting"`
	Features       []FeatureDrift `json:"features"`
}

// Snapshot freezes the live-vs-baseline comparison.
func (d *DriftDetector) Snapshot() DriftSnapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.snapshotLocked()
}

func (d *DriftDetector) snapshotLocked() DriftSnapshot {
	snap := DriftSnapshot{
		Observed: d.observed,
		Bins:     d.base.Bins,
		PSIAlert: d.cfg.PSIAlert,
	}
	for _, n := range d.ns {
		snap.WindowObserved += n
	}
	live := make([]int64, d.base.Bins)
	for f, fb := range d.base.Features {
		for b := range live {
			live[b] = 0
		}
		var sum, sumSq float64
		for e := range d.counts {
			for b, c := range d.counts[e][f] {
				live[b] += c
			}
			sum += d.sums[e][f]
			sumSq += d.sumSqs[e][f]
		}
		fd := FeatureDrift{Name: fb.Name, BaseMean: fb.Mean, BaseStd: fb.Std}
		if snap.WindowObserved > 0 {
			n := float64(snap.WindowObserved)
			fd.LiveMean = sum / n
			if variance := sumSq/n - fd.LiveMean*fd.LiveMean; variance > 0 {
				fd.LiveStd = math.Sqrt(variance)
			}
			fd.PSI, fd.KS = psiKS(fb.Counts, fb.Count, live, snap.WindowObserved)
			fd.Drifting = fd.PSI >= d.cfg.PSIAlert
		}
		snap.Features = append(snap.Features, fd)
		if fd.Drifting {
			snap.Drifting++
		}
	}
	return snap
}

// psiKS computes the Population Stability Index and the KS statistic
// between two histograms over the same bin edges. Empty expected bins are
// floored at a small epsilon so PSI stays finite when live mass lands
// where training saw nothing — exactly the shifts that matter most.
func psiKS(baseCounts []int64, baseN int64, liveCounts []int64, liveN int64) (psi, ks float64) {
	const eps = 1e-6
	var cdfBase, cdfLive float64
	for b := range baseCounts {
		p := float64(baseCounts[b]) / float64(baseN)
		q := float64(liveCounts[b]) / float64(liveN)
		pe, qe := math.Max(p, eps), math.Max(q, eps)
		psi += (qe - pe) * math.Log(qe/pe)
		cdfBase += p
		cdfLive += q
		if gap := math.Abs(cdfBase - cdfLive); gap > ks {
			ks = gap
		}
	}
	return psi, ks
}

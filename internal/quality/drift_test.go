package quality

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// trainRows builds a simple two-feature training matrix: feature 0
// uniform over [0,100), feature 1 constant.
func trainRows(n int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = []float64{float64(i % 100), 42}
	}
	return rows
}

func TestCaptureBaseline(t *testing.T) {
	b, err := CaptureBaseline([]string{"cycles", "instructions"}, trainRows(200), 10)
	if err != nil {
		t.Fatal(err)
	}
	if b.Bins != 10 || b.Rows != 200 || len(b.Features) != 2 {
		t.Fatalf("baseline shape = %+v", b)
	}
	f0 := b.Features[0]
	if f0.Name != "cycles" || f0.Min != 0 || f0.Max != 99 {
		t.Fatalf("feature 0 = %+v", f0)
	}
	if math.Abs(f0.Mean-49.5) > 1e-9 {
		t.Errorf("mean = %v, want 49.5", f0.Mean)
	}
	var total int64
	for _, c := range f0.Counts {
		total += c
	}
	if total != 200 {
		t.Errorf("histogram mass = %d, want 200", total)
	}
	// Constant feature gets a degenerate-range guard: unit-width span.
	f1 := b.Features[1]
	if f1.Std != 0 || f1.Edges[len(f1.Edges)-1] != 43 {
		t.Errorf("constant feature = %+v", f1)
	}
	if f1.Counts[0] != 200 {
		t.Errorf("constant feature mass = %v", f1.Counts)
	}
}

func TestCaptureBaselineErrors(t *testing.T) {
	if _, err := CaptureBaseline([]string{"a"}, nil, 8); err == nil {
		t.Error("accepted empty training set")
	}
	if _, err := CaptureBaseline(nil, trainRows(5), 8); err == nil {
		t.Error("accepted empty names")
	}
	if _, err := CaptureBaseline([]string{"a", "b", "c"}, trainRows(5), 8); err == nil {
		t.Error("accepted row/name width mismatch")
	}
}

func TestBaselineJSONRoundTrip(t *testing.T) {
	b, err := CaptureBaseline([]string{"cycles"}, trainRowsNarrow(50), 8)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := BaselineFromJSON(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 50 || len(got.Features) != 1 || got.Features[0].Name != "cycles" {
		t.Fatalf("round trip = %+v", got)
	}
	if _, err := BaselineFromJSON(nil); err == nil {
		t.Error("accepted empty raw baseline")
	}
	if _, err := BaselineFromJSON([]byte(`{"bins":4}`)); err == nil {
		t.Error("accepted featureless baseline")
	}
	if _, err := BaselineFromJSON([]byte(`{broken`)); err == nil {
		t.Error("accepted malformed JSON")
	}
}

func TestDriftDetectorStable(t *testing.T) {
	b, _ := CaptureBaseline([]string{"cycles", "instructions"}, trainRows(200), 10)
	d, err := NewDriftDetector(b, DriftConfig{Registry: obs.NewRegistry(), Bus: obs.NewBus()})
	if err != nil {
		t.Fatal(err)
	}
	// Live traffic drawn from the training distribution: PSI stays low.
	for _, row := range trainRows(200) {
		d.Observe(row)
	}
	d.Advance()
	snap := d.Snapshot()
	if snap.WindowObserved != 200 || snap.Drifting != 0 {
		t.Fatalf("stable traffic: window %d drifting %d", snap.WindowObserved, snap.Drifting)
	}
	if snap.Features[0].PSI > 0.01 {
		t.Errorf("in-distribution PSI = %v, want ~0", snap.Features[0].PSI)
	}
	if math.Abs(snap.Features[0].LiveMean-49.5) > 1e-9 {
		t.Errorf("live mean = %v", snap.Features[0].LiveMean)
	}
}

func TestDriftDetectorDetectsShift(t *testing.T) {
	b, _ := CaptureBaseline([]string{"cycles"}, func() [][]float64 {
		rows := make([][]float64, 200)
		for i := range rows {
			rows[i] = []float64{float64(i % 100)}
		}
		return rows
	}(), 10)
	r := obs.NewRegistry()
	bus := obs.NewBus()
	sub := bus.Subscribe(8)
	defer sub.Close()
	d, err := NewDriftDetector(b, DriftConfig{Epochs: 2, Registry: r, Bus: bus})
	if err != nil {
		t.Fatal(err)
	}
	// Live traffic shifted far above the training range clamps into the
	// top bin: PSI must blow past the threshold and KS approach 1.
	for i := 0; i < 100; i++ {
		d.Observe([]float64{500})
	}
	d.Advance()
	snap := d.Snapshot()
	if snap.Drifting != 1 || !snap.Features[0].Drifting {
		t.Fatalf("shifted traffic not flagged: %+v", snap.Features[0])
	}
	if snap.Features[0].PSI < 0.25 {
		t.Errorf("PSI = %v, want >= 0.25", snap.Features[0].PSI)
	}
	if snap.Features[0].KS < 0.8 {
		t.Errorf("KS = %v, want near 1", snap.Features[0].KS)
	}
	if got := r.Gauge(DriftingMetric).Value(); got != 1 {
		t.Errorf("drifting gauge = %v, want 1", got)
	}
	if got := r.Gauge("drift.psi.cycles").Value(); got < 0.25 {
		t.Errorf("psi gauge = %v", got)
	}
	select {
	case e := <-sub.Events():
		if e.Type != EventDrift {
			t.Fatalf("event = %+v, want %s", e, EventDrift)
		}
	case <-time.After(time.Second):
		t.Fatal("no drift event published")
	}

	// Recovery: rotate the shifted epochs out with in-distribution traffic.
	for round := 0; round < 2; round++ {
		for i := 0; i < 100; i++ {
			d.Observe([]float64{float64(i)})
		}
		d.Advance()
	}
	if snap := d.Snapshot(); snap.Drifting != 0 {
		t.Fatalf("drift did not resolve: %+v", snap.Features[0])
	}
	var resolved bool
	deadline := time.After(time.Second)
	for !resolved {
		select {
		case e := <-sub.Events():
			if e.Type == EventDriftResolved {
				resolved = true
			}
		case <-deadline:
			t.Fatal("no drift_resolved event published")
		}
	}
}

func TestDriftDetectorIgnoresBadVectors(t *testing.T) {
	b, _ := CaptureBaseline([]string{"a", "b"}, [][]float64{{1, 2}, {3, 4}}, 4)
	d, err := NewDriftDetector(b, DriftConfig{Registry: obs.NewRegistry(), Bus: obs.NewBus()})
	if err != nil {
		t.Fatal(err)
	}
	d.Observe([]float64{1}) // wrong arity
	d.Observe(nil)          // nil
	var nild *DriftDetector
	nild.Observe([]float64{1, 2}) // nil receiver
	if snap := d.Snapshot(); snap.WindowObserved != 0 {
		t.Fatalf("bad vectors counted: %d", snap.WindowObserved)
	}
	if _, err := NewDriftDetector(nil, DriftConfig{}); err == nil {
		t.Error("accepted nil baseline")
	}
}

// TestDriftDeterministicConcurrent pins the same commutativity contract
// as the scoreboard: concurrent observers produce identical snapshots.
func TestDriftDeterministicConcurrent(t *testing.T) {
	b, _ := CaptureBaseline([]string{"cycles"}, trainRowsNarrow(100), 8)
	serial, _ := NewDriftDetector(b, DriftConfig{Registry: obs.NewRegistry(), Bus: obs.NewBus()})
	for i := 0; i < 400; i++ {
		serial.Observe([]float64{float64(i % 150)})
	}
	concurrent, _ := NewDriftDetector(b, DriftConfig{Registry: obs.NewRegistry(), Bus: obs.NewBus()})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < 400; i += 8 {
				concurrent.Observe([]float64{float64(i % 150)})
			}
		}(w)
	}
	wg.Wait()
	a, c := serial.Snapshot(), concurrent.Snapshot()
	if a.Features[0].PSI != c.Features[0].PSI || a.Features[0].KS != c.Features[0].KS ||
		a.Features[0].LiveMean != c.Features[0].LiveMean {
		t.Fatalf("serial %+v != concurrent %+v", a.Features[0], c.Features[0])
	}
}

func trainRowsNarrow(n int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = []float64{float64(i % 100)}
	}
	return rows
}

package anomaly

import (
	"testing"

	"repro/internal/ml/eval"
	"repro/internal/rng"
)

// benignCluster draws n points around the origin; anomalies sit far away.
func benignCluster(seed uint64, n, dim int) [][]float64 {
	src := rng.New(seed)
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, dim)
		for j := range row {
			row[j] = src.Normal(0, 1)
		}
		out[i] = row
	}
	return out
}

func anomalies(seed uint64, n, dim int, shift float64) [][]float64 {
	src := rng.New(seed)
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, dim)
		for j := range row {
			row[j] = shift + src.Normal(0, 1)
		}
		out[i] = row
	}
	return out
}

func testDetector(t *testing.T, d Detector) {
	t.Helper()
	benign := benignCluster(1, 400, 4)
	if err := d.Fit(benign, 0.99); err != nil {
		t.Fatal(err)
	}
	bad := anomalies(2, 100, 4, 6)

	// Detection rate on far anomalies must be high; benign false-positive
	// rate near the calibrated 1%.
	caught := 0
	for _, row := range bad {
		if d.Detect(row) {
			caught++
		}
	}
	if caught < 95 {
		t.Fatalf("%s caught %d/100 distant anomalies", d.Name(), caught)
	}
	fresh := benignCluster(3, 400, 4)
	fp := 0
	for _, row := range fresh {
		if d.Detect(row) {
			fp++
		}
	}
	if fp > 40 { // 10% on held-out benign, calibrated at 1% on train
		t.Fatalf("%s false-positive count %d/400", d.Name(), fp)
	}
}

func TestMahalanobisDetects(t *testing.T) { testDetector(t, &Mahalanobis{}) }
func TestZScoreDetects(t *testing.T)      { testDetector(t, &ZScore{}) }

func TestMahalanobisUsesCorrelation(t *testing.T) {
	// Benign data is tightly correlated (x1 ~= x0). A point inside the
	// marginal ranges but off the correlation line is anomalous for
	// Mahalanobis, invisible to per-feature z-scores.
	src := rng.New(4)
	benign := make([][]float64, 500)
	for i := range benign {
		v := src.Normal(0, 2)
		benign[i] = []float64{v, v + src.Normal(0, 0.1)}
	}
	m := &Mahalanobis{}
	if err := m.Fit(benign, 0.995); err != nil {
		t.Fatal(err)
	}
	z := &ZScore{}
	if err := z.Fit(benign, 0.995); err != nil {
		t.Fatal(err)
	}
	offLine := []float64{2, -2} // inside marginals, off the line
	if !m.Detect(offLine) {
		t.Fatal("Mahalanobis missed a correlation-breaking anomaly")
	}
	if z.Detect(offLine) {
		t.Fatal("ZScore claims to see a correlation-breaking anomaly (should not)")
	}
}

func TestScoresRankAnomalies(t *testing.T) {
	benign := benignCluster(5, 300, 3)
	m := &Mahalanobis{}
	if err := m.Fit(benign, 0.99); err != nil {
		t.Fatal(err)
	}
	var scores []float64
	var labels []int
	for _, row := range benignCluster(6, 200, 3) {
		scores = append(scores, m.Score(row))
		labels = append(labels, 0)
	}
	for _, row := range anomalies(7, 200, 3, 4) {
		scores = append(scores, m.Score(row))
		labels = append(labels, 1)
	}
	auc, err := eval.AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.98 {
		t.Fatalf("anomaly AUC %v on well-separated data", auc)
	}
}

func TestFitErrors(t *testing.T) {
	for _, d := range []Detector{&Mahalanobis{}, &ZScore{}} {
		if err := d.Fit(nil, 0.99); err == nil {
			t.Fatalf("%s accepted empty benign set", d.Name())
		}
		if err := d.Fit(benignCluster(1, 10, 2), 1.5); err == nil {
			t.Fatalf("%s accepted quantile > 1", d.Name())
		}
		if err := d.Fit([][]float64{{1}, {1, 2}, {1}, {1}}, 0.9); err == nil {
			t.Fatalf("%s accepted ragged rows", d.Name())
		}
	}
}

func TestDetectorPanicsUnfitted(t *testing.T) {
	for _, f := range []func(){
		func() { (&Mahalanobis{}).Score([]float64{1}) },
		func() { (&ZScore{}).Score([]float64{1}) },
		func() { (&Mahalanobis{}).Threshold() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic before Fit")
				}
			}()
			f()
		}()
	}
}

func TestConstantFeatureHandled(t *testing.T) {
	// A constant benign feature must not break either detector.
	src := rng.New(8)
	benign := make([][]float64, 100)
	for i := range benign {
		benign[i] = []float64{src.Normal(0, 1), 7}
	}
	z := &ZScore{}
	if err := z.Fit(benign, 0.95); err != nil {
		t.Fatal(err)
	}
	m := &Mahalanobis{}
	if err := m.Fit(benign, 0.95); err != nil {
		t.Fatal(err)
	}
	// A deviation in the constant feature is maximally anomalous.
	if !z.Detect([]float64{0, 100}) || !m.Detect([]float64{0, 100}) {
		t.Fatal("deviation in constant feature not detected")
	}
}

func TestLogTransformPaths(t *testing.T) {
	// Heavy-tailed benign data: log transform keeps the profile tight.
	src := rng.New(21)
	benign := make([][]float64, 300)
	for i := range benign {
		benign[i] = []float64{src.LogNormal(10, 0.4), src.LogNormal(8, 0.4)}
	}
	for _, d := range []Detector{
		&Mahalanobis{LogTransform: true},
		&ZScore{LogTransform: true},
	} {
		if d.Name() == "" {
			t.Fatal("empty detector name")
		}
		if err := d.Fit(benign, 0.99); err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		// A typical benign point stays quiet; a 100x outlier alarms.
		if d.Detect([]float64{22000, 3000}) {
			t.Fatalf("%s flagged a typical benign point", d.Name())
		}
		if !d.Detect([]float64{2.2e6, 3000}) {
			t.Fatalf("%s missed a 100x outlier", d.Name())
		}
	}
	// logmap symmetry.
	if logmap(-5) != -logmap(5) {
		t.Fatal("logmap not odd-symmetric")
	}
}

func TestMahalanobisThresholdAccessor(t *testing.T) {
	benign := benignCluster(22, 100, 3)
	m := &Mahalanobis{}
	if err := m.Fit(benign, 0.9); err != nil {
		t.Fatal(err)
	}
	if m.Threshold() <= 0 {
		t.Fatalf("threshold %v", m.Threshold())
	}
}

// Package anomaly implements unsupervised malware detection over HPC
// features: a detector trained only on benign behaviour flags anything
// that deviates. This is the direction of Tang et al. (RAID'14, reference
// [15] of the thesis) and of the thesis's future-work item on statistical
// alternatives to supervised ML.
//
// Two detectors are provided: Mahalanobis (full-covariance distance to
// the benign distribution, ridge-regularized) and ZScore (per-feature
// standardized deviation, the cheapest hardware realization).
package anomaly

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mat"
	"repro/internal/ml"
)

// Detector scores instances by abnormality: higher means more anomalous.
// Detect applies the threshold calibrated at training time.
type Detector interface {
	Name() string
	// Fit learns the benign profile from benign-only rows, calibrating
	// the detection threshold at the given false-positive quantile
	// (e.g. 0.99 keeps ~1% training false positives).
	Fit(benign [][]float64, quantile float64) error
	// Score returns the abnormality of one instance.
	Score(features []float64) float64
	// Detect reports whether the instance exceeds the threshold.
	Detect(features []float64) bool
}

// logmap applies sign(x)*log1p(|x|) — the count-data normalizer shared
// with the Bayes classifier; HPC counts are heavy-tailed and a Gaussian
// benign profile over raw counts is hopelessly wide.
func logmap(v float64) float64 {
	if v < 0 {
		return -math.Log1p(-v)
	}
	return math.Log1p(v)
}

func logRows(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		tr := make([]float64, len(row))
		for j, v := range row {
			tr[j] = logmap(v)
		}
		out[i] = tr
	}
	return out
}

// checkFit validates shared Fit preconditions and returns dimensionality.
func checkFit(benign [][]float64, quantile float64) (int, error) {
	if len(benign) < 4 {
		return 0, fmt.Errorf("anomaly: need at least 4 benign rows, have %d", len(benign))
	}
	if quantile <= 0 || quantile >= 1 {
		return 0, fmt.Errorf("anomaly: quantile %v out of (0,1)", quantile)
	}
	dim := len(benign[0])
	if dim == 0 {
		return 0, fmt.Errorf("anomaly: zero-dimensional features")
	}
	for i, row := range benign {
		if len(row) != dim {
			return 0, fmt.Errorf("anomaly: row %d has %d features, want %d", i, len(row), dim)
		}
	}
	return dim, nil
}

// thresholdAt returns the q-quantile of the (copied, sorted) scores.
func thresholdAt(scores []float64, q float64) float64 {
	s := append([]float64{}, scores...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)-1))
	return s[idx]
}

// Mahalanobis models benign behaviour as a single Gaussian and scores by
// squared Mahalanobis distance.
type Mahalanobis struct {
	// Ridge is the covariance regularizer (default: 1e-6 x mean variance).
	Ridge float64
	// LogTransform maps features through sign(x)*log1p(|x|) before
	// fitting/scoring (recommended for raw HPC counts).
	LogTransform bool

	mean      []float64
	covInv    *mat.Matrix
	threshold float64
	trained   bool
}

// Name implements Detector.
func (m *Mahalanobis) Name() string { return "Mahalanobis" }

// Fit implements Detector.
func (m *Mahalanobis) Fit(benign [][]float64, quantile float64) error {
	dim, err := checkFit(benign, quantile)
	if err != nil {
		return err
	}
	if m.LogTransform {
		benign = logRows(benign)
	}
	x := mat.FromRows(benign)
	m.mean = x.ColMeans()
	cov := x.Covariance()
	ridge := m.Ridge
	if ridge <= 0 {
		tr := 0.0
		for i := 0; i < dim; i++ {
			tr += cov.At(i, i)
		}
		ridge = 1e-6*tr/float64(dim) + 1e-12
	}
	m.covInv, err = mat.InverseRidge(cov, ridge)
	if err != nil {
		return fmt.Errorf("anomaly: inverting benign covariance: %w", err)
	}
	m.trained = true
	scores := make([]float64, len(benign))
	for i, row := range benign {
		scores[i] = m.scoreTransformed(row)
	}
	m.threshold = thresholdAt(scores, quantile)
	return nil
}

// Score implements Detector: squared Mahalanobis distance to the benign
// mean.
func (m *Mahalanobis) Score(features []float64) float64 {
	if !m.trained {
		panic(ml.ErrNotTrained)
	}
	if m.LogTransform {
		tr := make([]float64, len(features))
		for j, v := range features {
			tr[j] = logmap(v)
		}
		features = tr
	}
	return m.scoreTransformed(features)
}

// scoreTransformed scores a row already in the fitted feature space.
func (m *Mahalanobis) scoreTransformed(features []float64) float64 {
	d := make([]float64, len(m.mean))
	for i := range d {
		d[i] = features[i] - m.mean[i]
	}
	tmp := m.covInv.MulVec(d)
	return mat.Dot(d, tmp)
}

// Detect implements Detector.
func (m *Mahalanobis) Detect(features []float64) bool {
	return m.Score(features) > m.threshold
}

// Threshold returns the calibrated detection threshold.
func (m *Mahalanobis) Threshold() float64 {
	if !m.trained {
		panic(ml.ErrNotTrained)
	}
	return m.threshold
}

// ZScore scores by the maximum absolute per-feature z-score — a bank of
// comparators in hardware, no multipliers beyond the normalization.
type ZScore struct {
	// LogTransform maps features through sign(x)*log1p(|x|) before
	// fitting/scoring (recommended for raw HPC counts).
	LogTransform bool

	mean, std []float64
	threshold float64
	trained   bool
}

// Name implements Detector.
func (z *ZScore) Name() string { return "ZScore" }

// Fit implements Detector.
func (z *ZScore) Fit(benign [][]float64, quantile float64) error {
	if _, err := checkFit(benign, quantile); err != nil {
		return err
	}
	if z.LogTransform {
		benign = logRows(benign)
	}
	x := mat.FromRows(benign)
	z.mean = x.ColMeans()
	z.std = x.ColStddevs()
	for j, s := range z.std {
		if s == 0 {
			z.std[j] = 1
		}
	}
	z.trained = true
	scores := make([]float64, len(benign))
	for i, row := range benign {
		scores[i] = z.scoreTransformed(row)
	}
	z.threshold = thresholdAt(scores, quantile)
	return nil
}

// Score implements Detector.
func (z *ZScore) Score(features []float64) float64 {
	if !z.trained {
		panic(ml.ErrNotTrained)
	}
	if z.LogTransform {
		tr := make([]float64, len(features))
		for j, v := range features {
			tr[j] = logmap(v)
		}
		features = tr
	}
	return z.scoreTransformed(features)
}

// scoreTransformed scores a row already in the fitted feature space.
func (z *ZScore) scoreTransformed(features []float64) float64 {
	worst := 0.0
	for j, v := range features {
		d := math.Abs(v-z.mean[j]) / z.std[j]
		if d > worst {
			worst = d
		}
	}
	return worst
}

// Detect implements Detector.
func (z *ZScore) Detect(features []float64) bool {
	return z.Score(features) > z.threshold
}

// Package ml defines the classifier interface shared by all learning
// algorithms in this repository and small utilities they have in common.
//
// The paper trains its models in WEKA; each WEKA classifier it uses has a
// from-scratch Go counterpart in a subpackage:
//
//	OneR                -> ml/oner
//	J48 (C4.5), REPTree -> ml/tree
//	JRip (RIPPER)       -> ml/rules
//	NaiveBayes          -> ml/bayes
//	Logistic / MLR, SVM -> ml/linear
//	MultilayerPerceptron-> ml/mlp
package ml

import (
	"errors"
	"fmt"
)

// Classifier is a trainable multiclass classifier over dense float
// features. Labels are ints in [0, numClasses).
//
// Untrained-model contract: every method other than Name and Train
// requires a prior successful Train. A method that cannot return an
// error (Predict, Proba, introspection accessors) panics with
// ErrNotTrained when called early; a method that can return an error
// (PredictBatch, infer.Compile, hw compilers) returns ErrNotTrained
// instead. No implementation silently returns a zero-value prediction
// from an untrained model.
type Classifier interface {
	// Name returns the classifier's display name (WEKA-style).
	Name() string
	// Train fits the model. Implementations must not retain X or y.
	Train(x [][]float64, y []int, numClasses int) error
	// Predict returns the predicted label for one instance. Predict must
	// only be called after a successful Train; it panics with
	// ErrNotTrained otherwise.
	Predict(features []float64) int
}

// ProbClassifier is a Classifier that can also report class-membership
// probabilities.
type ProbClassifier interface {
	Classifier
	// Proba returns a probability distribution over classes, summing to 1.
	Proba(features []float64) []float64
}

// Model reports the shape a classifier was trained with. All classifiers
// in this repository implement it after a successful Train (and panic
// with ErrNotTrained before one); consumers such as internal/infer and
// internal/hw use it to size buffers without re-deriving dimensions from
// data.
type Model interface {
	// Dim returns the feature dimensionality seen at Train time.
	Dim() int
	// NumClasses returns the number of classes seen at Train time.
	NumClasses() int
}

// BatchPredictor predicts many instances in one call. dst must have
// len(X); implementations fill dst[i] with the label for X[i] and are
// free to use internal scratch, so a single BatchPredictor must not be
// assumed goroutine-safe unless documented otherwise (infer.Program is).
// PredictBatch returns ErrNotTrained — rather than panicking — when the
// model has not been trained.
type BatchPredictor interface {
	PredictBatch(dst []int, X [][]float64) error
}

// Batch adapts any Classifier to the BatchPredictor interface by looping
// over Predict. It is the fallback for classifiers that have no compiled
// program; callers that want the fast path should try infer.Compile
// first. The adapter converts an ErrNotTrained panic from Predict into a
// returned error, honoring the batch half of the untrained contract.
func Batch(c Classifier) BatchPredictor { return batchAdapter{c} }

type batchAdapter struct{ c Classifier }

func (b batchAdapter) PredictBatch(dst []int, X [][]float64) (err error) {
	if len(dst) < len(X) {
		return fmt.Errorf("ml: dst holds %d labels but X has %d rows", len(dst), len(X))
	}
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok && errors.Is(e, ErrNotTrained) {
				err = ErrNotTrained
				return
			}
			panic(r)
		}
	}()
	for i, row := range X {
		dst[i] = b.c.Predict(row)
	}
	return nil
}

// ErrNotTrained is the sentinel for models used before Train: panicked
// by single-instance methods that cannot return an error, returned by
// batch and compile APIs that can. See the Classifier contract.
var ErrNotTrained = errors.New("ml: classifier not trained")

// CheckTrainingSet validates the common preconditions shared by every
// Train implementation and returns the feature dimensionality.
func CheckTrainingSet(x [][]float64, y []int, numClasses int) (dim int, err error) {
	if len(x) == 0 {
		return 0, errors.New("ml: empty training set")
	}
	if len(x) != len(y) {
		return 0, fmt.Errorf("ml: %d feature rows but %d labels", len(x), len(y))
	}
	if numClasses < 2 {
		return 0, fmt.Errorf("ml: numClasses %d < 2", numClasses)
	}
	dim = len(x[0])
	if dim == 0 {
		return 0, errors.New("ml: zero-dimensional features")
	}
	for i, row := range x {
		if len(row) != dim {
			return 0, fmt.Errorf("ml: row %d has %d features, want %d", i, len(row), dim)
		}
	}
	for i, label := range y {
		if label < 0 || label >= numClasses {
			return 0, fmt.Errorf("ml: row %d has label %d outside [0,%d)", i, label, numClasses)
		}
	}
	return dim, nil
}

// MajorityLabel returns the most frequent label in y (ties broken toward
// the smaller label), along with its count.
func MajorityLabel(y []int, numClasses int) (label, count int) {
	counts := make([]int, numClasses)
	for _, v := range y {
		counts[v]++
	}
	label, count = 0, counts[0]
	for c := 1; c < numClasses; c++ {
		if counts[c] > count {
			label, count = c, counts[c]
		}
	}
	return label, count
}

// ArgMax returns the index of the largest value (first on ties).
func ArgMax(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// ArgMaxInt returns the index of the largest int value (first on ties).
func ArgMaxInt(v []int) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// CopyMatrix deep-copies a feature matrix so models can safely keep it.
func CopyMatrix(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = append([]float64{}, row...)
	}
	return out
}

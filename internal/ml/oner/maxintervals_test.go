package oner

import (
	"testing"

	"repro/internal/ml/mltest"
)

func TestOneRMaxIntervals(t *testing.T) {
	// Alternating fine-grained labels produce many intervals by default;
	// MaxIntervals must bound them.
	x, y := mltest.Blobs(9, [][]float64{{0}, {0.4}}, 2000, 1.5)
	free := New()
	if err := free.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	capped := New()
	capped.MaxIntervals = 8
	if err := capped.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	if capped.NumIntervals() > 8 {
		t.Fatalf("capped rule has %d intervals, want <= 8", capped.NumIntervals())
	}
	if free.NumIntervals() <= capped.NumIntervals() {
		t.Fatalf("cap had no effect: free %d vs capped %d",
			free.NumIntervals(), capped.NumIntervals())
	}
}

package oner

import (
	"testing"

	"repro/internal/ml/mltest"
)

func TestOneRSeparable(t *testing.T) {
	x, y := mltest.TwoBlobs(1, 200)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	c := New()
	if err := c.Train(xtr, ytr, 2); err != nil {
		t.Fatal(err)
	}
	acc := mltest.Accuracy(c.Predict, xte, yte)
	if acc < 0.95 {
		t.Fatalf("accuracy %v on separable blobs, want >= 0.95", acc)
	}
}

func TestOneRPicksInformativeAttribute(t *testing.T) {
	// Attribute 0 is noise, attribute 1 perfectly separates.
	x := [][]float64{}
	y := []int{}
	for i := 0; i < 40; i++ {
		v := float64(i % 7)
		if i < 20 {
			x = append(x, []float64{v, 0})
			y = append(y, 0)
		} else {
			x = append(x, []float64{v, 10})
			y = append(y, 1)
		}
	}
	c := New()
	if err := c.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	if c.Attribute() != 1 {
		t.Fatalf("picked attribute %d, want 1", c.Attribute())
	}
	if c.Predict([]float64{3, 0}) != 0 || c.Predict([]float64{3, 10}) != 1 {
		t.Fatal("rule misclassifies the pure clusters")
	}
}

func TestOneRMulticlass(t *testing.T) {
	x, y := mltest.Blobs(2, [][]float64{{0}, {5}, {10}}, 100, 0.5)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	c := New()
	if err := c.Train(xtr, ytr, 3); err != nil {
		t.Fatal(err)
	}
	acc := mltest.Accuracy(c.Predict, xte, yte)
	if acc < 0.9 {
		t.Fatalf("1-D 3-class accuracy %v, want >= 0.9", acc)
	}
	if c.NumIntervals() < 3 {
		t.Fatalf("rule has %d intervals, want >= 3", c.NumIntervals())
	}
}

func TestOneRXORIsHard(t *testing.T) {
	// A single-attribute rule cannot solve XOR: accuracy must hover
	// around chance.
	x, y := mltest.XOR(3, 100)
	c := New()
	if err := c.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	acc := mltest.Accuracy(c.Predict, x, y)
	if acc > 0.75 {
		t.Fatalf("OneR on XOR scored %v; single thresholds should not do that", acc)
	}
}

func TestOneRRejectsBadInput(t *testing.T) {
	c := New()
	if err := c.Train(nil, nil, 2); err == nil {
		t.Fatal("accepted empty training set")
	}
}

func TestOneRPanicsUntrained(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Predict before Train did not panic")
		}
	}()
	New().Predict([]float64{1})
}

func TestOneRDeterministic(t *testing.T) {
	x, y := mltest.TwoBlobs(5, 100)
	a, b := New(), New()
	if err := a.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if a.Predict(x[i]) != b.Predict(x[i]) {
			t.Fatal("training is not deterministic")
		}
	}
}

// Package oner implements Holte's 1R classifier (WEKA's OneR): a single
// rule on the one attribute that, after supervised discretization, makes
// the fewest training errors. Its trivially small hardware footprint is
// why the paper singles it out for embedded deployment.
package oner

import (
	"fmt"
	"sort"

	"repro/internal/ml"
)

// OneR is the 1R classifier. The zero value is usable with default
// options; call Train before Predict.
type OneR struct {
	// MinBucket is the minimum number of majority-class instances per
	// discretization interval (WEKA's -B, default 6).
	MinBucket int
	// MaxIntervals, when positive, bounds the number of intervals of the
	// learned rule by raising the effective bucket size — the knob a
	// hardware implementation turns, since every interval is a physical
	// comparator. 0 means unlimited (WEKA behaviour).
	MaxIntervals int

	attr       int       // chosen attribute
	thresholds []float64 // interval upper bounds (exclusive), ascending
	labels     []int     // len(thresholds)+1 interval labels
	fallback   int       // majority class, for degenerate cases
	dim        int
	numClasses int
	trained    bool
}

// New returns a OneR with WEKA's default bucket size.
func New() *OneR { return &OneR{MinBucket: 6} }

// Name implements ml.Classifier.
func (o *OneR) Name() string { return "OneR" }

// Train implements ml.Classifier.
func (o *OneR) Train(x [][]float64, y []int, numClasses int) error {
	dim, err := ml.CheckTrainingSet(x, y, numClasses)
	if err != nil {
		return err
	}
	if o.MinBucket <= 0 {
		o.MinBucket = 6
	}
	minBucket := o.MinBucket
	if o.MaxIntervals > 0 {
		// Each interval needs at least bucketFor majority instances, so
		// the rule cannot exceed MaxIntervals intervals.
		bucketFor := (len(y) + o.MaxIntervals - 1) / o.MaxIntervals
		if bucketFor > minBucket {
			minBucket = bucketFor
		}
	}
	o.fallback, _ = ml.MajorityLabel(y, numClasses)

	bestErrs := len(y) + 1
	for a := 0; a < dim; a++ {
		thr, lab, errs := o.buildRule(x, y, a, numClasses, minBucket)
		if errs < bestErrs {
			bestErrs = errs
			o.attr = a
			o.thresholds = thr
			o.labels = lab
		}
	}
	if bestErrs > len(y) {
		return fmt.Errorf("oner: no usable attribute found")
	}
	o.dim, o.numClasses = dim, numClasses
	o.trained = true
	return nil
}

// Dim implements ml.Model.
func (o *OneR) Dim() int {
	if !o.trained {
		panic(ml.ErrNotTrained)
	}
	return o.dim
}

// NumClasses implements ml.Model.
func (o *OneR) NumClasses() int {
	if !o.trained {
		panic(ml.ErrNotTrained)
	}
	return o.numClasses
}

// Fallback returns the majority-class label used when the selected
// attribute is missing from an instance.
func (o *OneR) Fallback() int {
	if !o.trained {
		panic(ml.ErrNotTrained)
	}
	return o.fallback
}

// buildRule discretizes attribute a with Holte's algorithm and returns the
// rule plus its training error count.
func (o *OneR) buildRule(x [][]float64, y []int, a, numClasses, minBucket int) (thr []float64, lab []int, errs int) {
	type pair struct {
		v     float64
		label int
	}
	pairs := make([]pair, len(x))
	for i := range x {
		pairs[i] = pair{x[i][a], y[i]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })

	// Greedy interval construction: extend the current interval until its
	// majority class has at least MinBucket members, then close it at the
	// next value change.
	type interval struct {
		label int
		count []int
		hi    float64 // last value included
	}
	var ivals []interval
	cur := interval{count: make([]int, numClasses)}
	flush := func() {
		if sum(cur.count) == 0 {
			return
		}
		best := ml.ArgMaxInt(cur.count)
		cur.label = best
		ivals = append(ivals, cur)
		cur = interval{count: make([]int, numClasses)}
	}
	for i := 0; i < len(pairs); i++ {
		cur.count[pairs[i].label]++
		cur.hi = pairs[i].v
		_, maxCount := maxOf(cur.count)
		if maxCount >= minBucket {
			// Close only at a value boundary so equal values never span
			// two intervals.
			if i+1 < len(pairs) && pairs[i+1].v != pairs[i].v {
				flush()
			}
		}
	}
	flush()
	if len(ivals) == 0 {
		return nil, nil, len(y) + 1
	}

	// Merge adjacent intervals with the same majority label.
	merged := ivals[:1]
	for _, iv := range ivals[1:] {
		last := &merged[len(merged)-1]
		if iv.label == last.label {
			for c := range last.count {
				last.count[c] += iv.count[c]
			}
			last.hi = iv.hi
		} else {
			merged = append(merged, iv)
		}
	}

	// Thresholds: midpoint between one interval's hi and the next
	// interval's contents (approximated by its hi of the previous).
	lab = make([]int, len(merged))
	for i, iv := range merged {
		lab[i] = iv.label
		errs += sum(iv.count) - iv.count[iv.label]
	}
	thr = make([]float64, len(merged)-1)
	for i := 0; i < len(merged)-1; i++ {
		thr[i] = merged[i].hi
	}
	return thr, lab, errs
}

// Predict implements ml.Classifier.
func (o *OneR) Predict(features []float64) int {
	if !o.trained {
		panic(ml.ErrNotTrained)
	}
	if o.attr >= len(features) {
		return o.fallback
	}
	v := features[o.attr]
	// First interval whose threshold is >= v.
	idx := sort.SearchFloat64s(o.thresholds, v)
	if idx >= len(o.labels) {
		idx = len(o.labels) - 1
	}
	return o.labels[idx]
}

// Attribute returns the index of the selected attribute.
func (o *OneR) Attribute() int {
	if !o.trained {
		panic(ml.ErrNotTrained)
	}
	return o.attr
}

// NumIntervals returns the number of discretization intervals of the
// learned rule; the hardware cost model sizes the comparator chain by it.
func (o *OneR) NumIntervals() int {
	if !o.trained {
		panic(ml.ErrNotTrained)
	}
	return len(o.labels)
}

func sum(v []int) int {
	s := 0
	for _, x := range v {
		s += x
	}
	return s
}

func maxOf(v []int) (idx, val int) {
	idx, val = 0, v[0]
	for i, x := range v {
		if x > val {
			idx, val = i, x
		}
	}
	return idx, val
}

// Rule exposes the learned 1R rule for hardware code generation: interval
// upper bounds (ascending, exclusive) and the label of each of the
// len(thresholds)+1 intervals.
func (o *OneR) Rule() (attr int, thresholds []float64, labels []int) {
	if !o.trained {
		panic(ml.ErrNotTrained)
	}
	return o.attr, append([]float64{}, o.thresholds...), append([]int{}, o.labels...)
}

package knn

import (
	"testing"

	"repro/internal/ml/mltest"
)

func TestKNNSeparable(t *testing.T) {
	x, y := mltest.TwoBlobs(1, 200)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	c := New()
	if err := c.Train(xtr, ytr, 2); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c.Predict, xte, yte); acc < 0.97 {
		t.Fatalf("accuracy %v", acc)
	}
}

func TestKNNSolvesXOR(t *testing.T) {
	// Local methods handle XOR trivially.
	x, y := mltest.XOR(2, 200)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	c := New()
	if err := c.Train(xtr, ytr, 2); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c.Predict, xte, yte); acc < 0.95 {
		t.Fatalf("XOR accuracy %v", acc)
	}
}

func TestKNNMulticlassAndAccessors(t *testing.T) {
	x, y := mltest.ThreeBlobs(3, 150)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	c := New()
	if err := c.Train(xtr, ytr, 3); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c.Predict, xte, yte); acc < 0.85 {
		t.Fatalf("3-class accuracy %v", acc)
	}
	if c.NumStored() != len(xtr) || c.Dim() != 4 {
		t.Fatalf("stored %d dim %d", c.NumStored(), c.Dim())
	}
}

func TestKNNScaleInvariance(t *testing.T) {
	x, y := mltest.TwoBlobs(4, 150)
	for i := range x {
		x[i][0] *= 1e6
	}
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	c := New()
	if err := c.Train(xtr, ytr, 2); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c.Predict, xte, yte); acc < 0.95 {
		t.Fatalf("accuracy %v on skewed scales", acc)
	}
}

func TestKNNK1Memorizes(t *testing.T) {
	x, y := mltest.ThreeBlobs(5, 60)
	c := &KNN{K: 1}
	if err := c.Train(x, y, 3); err != nil {
		t.Fatal(err)
	}
	// 1-NN on its own training set is perfect.
	if acc := mltest.Accuracy(c.Predict, x, y); acc != 1 {
		t.Fatalf("1-NN training accuracy %v", acc)
	}
}

func TestKNNWeighted(t *testing.T) {
	x, y := mltest.TwoBlobs(6, 150)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	c := &KNN{K: 7, Weighted: true}
	if err := c.Train(xtr, ytr, 2); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c.Predict, xte, yte); acc < 0.95 {
		t.Fatalf("weighted accuracy %v", acc)
	}
}

func TestKNNKLargerThanData(t *testing.T) {
	x := [][]float64{{0}, {1}, {10}}
	y := []int{0, 0, 1}
	c := &KNN{K: 50}
	if err := c.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	// k clamps to n; majority of all = class 0.
	if c.Predict([]float64{0.5}) != 0 {
		t.Fatal("clamped-k prediction wrong")
	}
}

func TestKNNPanicsAndErrors(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic before Train")
		}
	}()
	if err := New().Train(nil, nil, 2); err == nil {
		t.Fatal("accepted empty training set")
	}
	New().Predict([]float64{1})
}

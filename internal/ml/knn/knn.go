// Package knn implements k-nearest-neighbours classification (WEKA's IBk),
// the instance-based learner of Demme et al. (ISCA'13), the paper's
// foundational reference. KNN is interesting here precisely because it is
// hostile to hardware: the "model" is the entire training set, so its
// FPGA realization needs a distance engine plus enough BRAM to hold every
// stored exemplar — the antithesis of OneR's eleven LUTs.
package knn

import (
	"container/heap"
	"math"

	"repro/internal/ml"
)

// KNN is a brute-force k-nearest-neighbours classifier with internal
// feature standardization (Euclidean distance over raw HPC counts would
// be dominated by the largest-magnitude counter).
type KNN struct {
	// K is the neighbour count (default 5).
	K int
	// Weighted enables inverse-distance vote weighting (WEKA -I).
	Weighted bool

	x          [][]float64 // standardized training features
	y          []int
	mean, std  []float64
	numClasses int
	trained    bool
}

// New returns a KNN with default parameters.
func New() *KNN { return &KNN{K: 5} }

// Name implements ml.Classifier.
func (k *KNN) Name() string { return "KNN" }

// Train implements ml.Classifier: it standardizes and stores the data.
func (k *KNN) Train(x [][]float64, y []int, numClasses int) error {
	dim, err := ml.CheckTrainingSet(x, y, numClasses)
	if err != nil {
		return err
	}
	if k.K <= 0 {
		k.K = 5
	}
	k.numClasses = numClasses
	k.mean = make([]float64, dim)
	k.std = make([]float64, dim)
	n := float64(len(x))
	for _, row := range x {
		for j, v := range row {
			k.mean[j] += v
		}
	}
	for j := range k.mean {
		k.mean[j] /= n
	}
	for _, row := range x {
		for j, v := range row {
			d := v - k.mean[j]
			k.std[j] += d * d
		}
	}
	for j := range k.std {
		k.std[j] = math.Sqrt(k.std[j] / n)
		if k.std[j] == 0 {
			k.std[j] = 1
		}
	}
	k.x = make([][]float64, len(x))
	k.y = append([]int{}, y...)
	for i, row := range x {
		k.x[i] = k.standardize(row)
	}
	k.trained = true
	return nil
}

func (k *KNN) standardize(row []float64) []float64 {
	out := make([]float64, len(row))
	for j, v := range row {
		out[j] = (v - k.mean[j]) / k.std[j]
	}
	return out
}

// neighbourHeap is a max-heap on distance so the worst of the current k
// best sits on top.
type neighbour struct {
	dist  float64
	label int
}
type neighbourHeap []neighbour

func (h neighbourHeap) Len() int            { return len(h) }
func (h neighbourHeap) Less(i, j int) bool  { return h[i].dist > h[j].dist }
func (h neighbourHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *neighbourHeap) Push(x interface{}) { *h = append(*h, x.(neighbour)) }
func (h *neighbourHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// Predict implements ml.Classifier.
func (k *KNN) Predict(features []float64) int {
	if !k.trained {
		panic(ml.ErrNotTrained)
	}
	q := k.standardize(features)
	kk := k.K
	if kk > len(k.x) {
		kk = len(k.x)
	}
	h := make(neighbourHeap, 0, kk+1)
	for i, row := range k.x {
		d := 0.0
		for j, v := range row {
			diff := v - q[j]
			d += diff * diff
		}
		if len(h) < kk {
			heap.Push(&h, neighbour{d, k.y[i]})
		} else if d < h[0].dist {
			heap.Pop(&h)
			heap.Push(&h, neighbour{d, k.y[i]})
		}
	}
	votes := make([]float64, k.numClasses)
	for _, nb := range h {
		w := 1.0
		if k.Weighted {
			w = 1 / (math.Sqrt(nb.dist) + 1e-9)
		}
		votes[nb.label] += w
	}
	return ml.ArgMax(votes)
}

// NumStored returns the stored exemplar count; the hardware model sizes
// the exemplar memory from it.
func (k *KNN) NumStored() int {
	if !k.trained {
		panic(ml.ErrNotTrained)
	}
	return len(k.x)
}

// Dim returns the feature dimensionality of the stored exemplars.
func (k *KNN) Dim() int {
	if !k.trained {
		panic(ml.ErrNotTrained)
	}
	return len(k.mean)
}

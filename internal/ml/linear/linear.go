// Package linear implements the paper's linear models: multinomial
// logistic regression (WEKA's Logistic, the thesis's "MLR") and a linear
// support vector machine trained with the Pegasos subgradient method
// (WEKA's SMO counterpart), with one-vs-rest reduction for multiclass.
//
// Raw HPC counts span many orders of magnitude, so both models
// standardize features internally using training-set statistics.
package linear

import (
	"fmt"
	"math"

	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Iteration counters across all fits in the process. SVM epochs count
// per binary one-vs-rest problem, matching the work Pegasos performs.
var (
	mLogisticEpochs = obs.GetCounter("ml.logistic_epochs")
	mSVMEpochs      = obs.GetCounter("ml.svm_epochs")
)

// scaler standardizes features with train-set statistics.
type scaler struct {
	mean, std []float64
}

func fitScaler(x [][]float64) *scaler {
	dim := len(x[0])
	s := &scaler{mean: make([]float64, dim), std: make([]float64, dim)}
	n := float64(len(x))
	for _, row := range x {
		for j, v := range row {
			s.mean[j] += v
		}
	}
	for j := range s.mean {
		s.mean[j] /= n
	}
	for _, row := range x {
		for j, v := range row {
			d := v - s.mean[j]
			s.std[j] += d * d
		}
	}
	for j := range s.std {
		s.std[j] = math.Sqrt(s.std[j] / n)
		if s.std[j] == 0 {
			s.std[j] = 1
		}
	}
	return s
}

func (s *scaler) apply(row []float64, out []float64) {
	for j, v := range row {
		out[j] = (v - s.mean[j]) / s.std[j]
	}
}

// Logistic is multinomial logistic regression (softmax) trained with
// mini-batch SGD and L2 regularization.
type Logistic struct {
	// Epochs over the training set (default 60).
	Epochs int
	// LR is the initial learning rate (default 0.1, 1/t decay).
	LR float64
	// L2 is the ridge penalty (default 1e-4, WEKA default ridge 1e-8 is
	// too loose for SGD).
	L2 float64
	// Batch is the mini-batch size (default 32).
	Batch int
	// Seed controls shuffling.
	Seed uint64
	// ClassWeights optionally re-weights the loss per true class (length
	// numClasses). Used to balance one-vs-rest experts trained on skewed
	// label distributions; nil means uniform weights.
	ClassWeights []float64

	w       [][]float64 // [class][dim+1], last is bias
	scale   *scaler
	k, dim  int
	trained bool
}

// NewLogistic returns an MLR with default hyperparameters.
func NewLogistic() *Logistic {
	return &Logistic{Epochs: 60, LR: 0.1, L2: 1e-4, Batch: 32, Seed: 1}
}

// Name implements ml.Classifier.
func (lg *Logistic) Name() string { return "Logistic" }

func (lg *Logistic) fillDefaults() {
	d := NewLogistic()
	if lg.Epochs <= 0 {
		lg.Epochs = d.Epochs
	}
	if lg.LR <= 0 {
		lg.LR = d.LR
	}
	if lg.L2 < 0 {
		lg.L2 = d.L2
	}
	if lg.Batch <= 0 {
		lg.Batch = d.Batch
	}
}

// Train implements ml.Classifier.
func (lg *Logistic) Train(x [][]float64, y []int, numClasses int) error {
	dim, err := ml.CheckTrainingSet(x, y, numClasses)
	if err != nil {
		return err
	}
	lg.fillDefaults()
	if lg.ClassWeights != nil && len(lg.ClassWeights) != numClasses {
		return fmt.Errorf("linear: %d class weights for %d classes",
			len(lg.ClassWeights), numClasses)
	}
	lg.k, lg.dim = numClasses, dim
	lg.scale = fitScaler(x)
	lg.w = make([][]float64, numClasses)
	for c := range lg.w {
		lg.w[c] = make([]float64, dim+1)
	}

	n := len(x)
	z := make([][]float64, n)
	for i := range x {
		z[i] = make([]float64, dim)
		lg.scale.apply(x[i], z[i])
	}

	src := rng.New(lg.Seed)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	probs := make([]float64, numClasses)
	step := 0
	for epoch := 0; epoch < lg.Epochs; epoch++ {
		src.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += lg.Batch {
			end := start + lg.Batch
			if end > n {
				end = n
			}
			step++
			lr := lg.LR / (1 + 0.001*float64(step))
			scale := lr / float64(end-start)
			for _, idx := range order[start:end] {
				row := z[idx]
				lg.softmax(row, probs)
				sw := 1.0
				if lg.ClassWeights != nil {
					sw = lg.ClassWeights[y[idx]]
				}
				for c := 0; c < numClasses; c++ {
					g := sw * probs[c]
					if c == y[idx] {
						g -= sw
					}
					wc := lg.w[c]
					for j, v := range row {
						wc[j] -= scale * g * v
					}
					wc[dim] -= scale * g
				}
			}
			// L2 shrinkage (biases excluded).
			if lg.L2 > 0 {
				shrink := 1 - lr*lg.L2
				for c := range lg.w {
					for j := 0; j < dim; j++ {
						lg.w[c][j] *= shrink
					}
				}
			}
		}
	}
	mLogisticEpochs.Add(int64(lg.Epochs))
	lg.trained = true
	return nil
}

// softmax fills out with class probabilities for a standardized row.
func (lg *Logistic) softmax(z []float64, out []float64) {
	maxS := math.Inf(-1)
	for c := 0; c < lg.k; c++ {
		wc := lg.w[c]
		s := wc[lg.dim]
		for j, v := range z {
			s += wc[j] * v
		}
		out[c] = s
		if s > maxS {
			maxS = s
		}
	}
	sum := 0.0
	for c := range out {
		out[c] = math.Exp(out[c] - maxS)
		sum += out[c]
	}
	for c := range out {
		out[c] /= sum
	}
}

// Predict implements ml.Classifier.
func (lg *Logistic) Predict(features []float64) int {
	return ml.ArgMax(lg.Proba(features))
}

// Proba implements ml.ProbClassifier.
func (lg *Logistic) Proba(features []float64) []float64 {
	if !lg.trained {
		panic(ml.ErrNotTrained)
	}
	z := make([]float64, lg.dim)
	lg.scale.apply(features, z)
	out := make([]float64, lg.k)
	lg.softmax(z, out)
	return out
}

// Weights returns the learned weight matrix ([class][dim+1], bias last);
// the hardware cost model sizes the MAC array from it.
func (lg *Logistic) Weights() [][]float64 {
	if !lg.trained {
		panic(ml.ErrNotTrained)
	}
	return lg.w
}

// Dim implements ml.Model.
func (lg *Logistic) Dim() int {
	if !lg.trained {
		panic(ml.ErrNotTrained)
	}
	return lg.dim
}

// NumClasses implements ml.Model.
func (lg *Logistic) NumClasses() int {
	if !lg.trained {
		panic(ml.ErrNotTrained)
	}
	return lg.k
}

// SVM is a linear SVM trained with Pegasos; multiclass via one-vs-rest.
type SVM struct {
	// Lambda is the Pegasos regularization (default 1e-4).
	Lambda float64
	// Epochs over the training set (default 40).
	Epochs int
	// Seed controls sampling.
	Seed uint64

	w       [][]float64 // one weight vector (dim+1) per class, OvR
	scale   *scaler
	k, dim  int
	trained bool
}

// NewSVM returns a linear SVM with default hyperparameters.
func NewSVM() *SVM { return &SVM{Lambda: 1e-4, Epochs: 40, Seed: 1} }

// Name implements ml.Classifier.
func (s *SVM) Name() string { return "SVM" }

// Train implements ml.Classifier.
func (s *SVM) Train(x [][]float64, y []int, numClasses int) error {
	dim, err := ml.CheckTrainingSet(x, y, numClasses)
	if err != nil {
		return err
	}
	if s.Lambda <= 0 {
		s.Lambda = 1e-4
	}
	if s.Epochs <= 0 {
		s.Epochs = 40
	}
	s.k, s.dim = numClasses, dim
	s.scale = fitScaler(x)
	n := len(x)
	z := make([][]float64, n)
	for i := range x {
		z[i] = make([]float64, dim)
		s.scale.apply(x[i], z[i])
	}

	s.w = make([][]float64, numClasses)
	for c := 0; c < numClasses; c++ {
		s.w[c] = s.trainBinary(z, y, c)
	}
	mSVMEpochs.Add(int64(s.Epochs) * int64(numClasses))
	s.trained = true
	return nil
}

// trainBinary runs Pegasos for class c vs rest and returns w (dim+1).
func (s *SVM) trainBinary(z [][]float64, y []int, c int) []float64 {
	n := len(z)
	w := make([]float64, s.dim+1)
	src := rng.New(s.Seed + uint64(c)*7919)
	t := 0
	for epoch := 0; epoch < s.Epochs; epoch++ {
		for i := 0; i < n; i++ {
			t++
			idx := src.Intn(n)
			label := -1.0
			if y[idx] == c {
				label = 1.0
			}
			eta := 1 / (s.Lambda * float64(t))
			row := z[idx]
			margin := w[s.dim]
			for j, v := range row {
				margin += w[j] * v
			}
			// Regularization shrink (weights only).
			shrink := 1 - eta*s.Lambda
			for j := 0; j < s.dim; j++ {
				w[j] *= shrink
			}
			if label*margin < 1 {
				for j, v := range row {
					w[j] += eta * label * v
				}
				w[s.dim] += eta * label
			}
		}
	}
	return w
}

// decision returns the OvR margins for a standardized row.
func (s *SVM) decision(z []float64) []float64 {
	out := make([]float64, s.k)
	for c := 0; c < s.k; c++ {
		wc := s.w[c]
		m := wc[s.dim]
		for j, v := range z {
			m += wc[j] * v
		}
		out[c] = m
	}
	return out
}

// Predict implements ml.Classifier.
func (s *SVM) Predict(features []float64) int {
	if !s.trained {
		panic(ml.ErrNotTrained)
	}
	z := make([]float64, s.dim)
	s.scale.apply(features, z)
	return ml.ArgMax(s.decision(z))
}

// Weights returns the per-class OvR weight vectors (bias last).
func (s *SVM) Weights() [][]float64 {
	if !s.trained {
		panic(ml.ErrNotTrained)
	}
	return s.w
}

// Dim implements ml.Model.
func (s *SVM) Dim() int {
	if !s.trained {
		panic(ml.ErrNotTrained)
	}
	return s.dim
}

// NumClasses implements ml.Model.
func (s *SVM) NumClasses() int {
	if !s.trained {
		panic(ml.ErrNotTrained)
	}
	return s.k
}

// Scaler exposes the internal standardization statistics (means, stddevs)
// fitted at training time; hardware code generation folds them into the
// weights so the emitted datapath consumes raw features.
func (lg *Logistic) Scaler() (means, stddevs []float64) {
	if !lg.trained {
		panic(ml.ErrNotTrained)
	}
	return append([]float64{}, lg.scale.mean...), append([]float64{}, lg.scale.std...)
}

// Scaler exposes the internal standardization statistics (see Logistic).
func (s *SVM) Scaler() (means, stddevs []float64) {
	if !s.trained {
		panic(ml.ErrNotTrained)
	}
	return append([]float64{}, s.scale.mean...), append([]float64{}, s.scale.std...)
}

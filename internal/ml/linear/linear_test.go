package linear

import (
	"math"
	"testing"

	"repro/internal/ml/mltest"
)

func TestLogisticSeparable(t *testing.T) {
	x, y := mltest.TwoBlobs(1, 200)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	c := NewLogistic()
	if err := c.Train(xtr, ytr, 2); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c.Predict, xte, yte); acc < 0.97 {
		t.Fatalf("accuracy %v, want >= 0.97", acc)
	}
}

func TestLogisticMulticlass(t *testing.T) {
	x, y := mltest.ThreeBlobs(2, 150)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	c := NewLogistic()
	if err := c.Train(xtr, ytr, 3); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c.Predict, xte, yte); acc < 0.85 {
		t.Fatalf("3-class accuracy %v, want >= 0.85", acc)
	}
}

func TestLogisticProba(t *testing.T) {
	x, y := mltest.ThreeBlobs(3, 80)
	c := NewLogistic()
	if err := c.Train(x, y, 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p := c.Proba(x[i])
		sum := 0.0
		for _, v := range p {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v", sum)
		}
	}
}

func TestLogisticScaleInvariance(t *testing.T) {
	// Internal standardization must make huge-scale features (raw HPC
	// counts) learnable.
	x, y := mltest.TwoBlobs(4, 150)
	for i := range x {
		x[i][0] *= 1e6 // counts-like magnitude
		x[i][1] *= 1e3
	}
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	c := NewLogistic()
	if err := c.Train(xtr, ytr, 2); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c.Predict, xte, yte); acc < 0.95 {
		t.Fatalf("accuracy %v on scaled features, want >= 0.95", acc)
	}
}

func TestLogisticWeightsShape(t *testing.T) {
	x, y := mltest.ThreeBlobs(5, 60)
	c := NewLogistic()
	if err := c.Train(x, y, 3); err != nil {
		t.Fatal(err)
	}
	w := c.Weights()
	if len(w) != 3 || len(w[0]) != 5 { // 4 features + bias
		t.Fatalf("weights shape %dx%d, want 3x5", len(w), len(w[0]))
	}
}

func TestLogisticDeterministicWithSeed(t *testing.T) {
	x, y := mltest.TwoBlobs(6, 100)
	a, b := NewLogistic(), NewLogistic()
	a.Seed, b.Seed = 9, 9
	if err := a.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		pa, pb := a.Proba(x[i]), b.Proba(x[i])
		for k := range pa {
			if pa[k] != pb[k] {
				t.Fatal("same seed, different model")
			}
		}
	}
}

func TestSVMSeparable(t *testing.T) {
	x, y := mltest.TwoBlobs(1, 200)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	c := NewSVM()
	if err := c.Train(xtr, ytr, 2); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c.Predict, xte, yte); acc < 0.97 {
		t.Fatalf("accuracy %v, want >= 0.97", acc)
	}
}

func TestSVMMulticlassOvR(t *testing.T) {
	x, y := mltest.ThreeBlobs(2, 150)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	c := NewSVM()
	if err := c.Train(xtr, ytr, 3); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c.Predict, xte, yte); acc < 0.85 {
		t.Fatalf("3-class accuracy %v, want >= 0.85", acc)
	}
	w := c.Weights()
	if len(w) != 3 {
		t.Fatalf("OvR weight vectors = %d, want 3", len(w))
	}
}

func TestSVMXORIsHard(t *testing.T) {
	// A linear SVM cannot solve XOR.
	x, y := mltest.XOR(3, 100)
	c := NewSVM()
	if err := c.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c.Predict, x, y); acc > 0.75 {
		t.Fatalf("linear SVM on XOR scored %v", acc)
	}
}

func TestPanicsUntrained(t *testing.T) {
	for _, f := range []func(){
		func() { NewLogistic().Predict([]float64{1}) },
		func() { NewSVM().Predict([]float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic before Train")
				}
			}()
			f()
		}()
	}
}

func TestRejectBadInput(t *testing.T) {
	if err := NewLogistic().Train(nil, nil, 2); err == nil {
		t.Fatal("logistic accepted empty set")
	}
	if err := NewSVM().Train([][]float64{{1}}, []int{3}, 2); err == nil {
		t.Fatal("svm accepted out-of-range label")
	}
}

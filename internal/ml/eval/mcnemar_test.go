package eval

import (
	"math"
	"testing"
)

func TestMcNemarIdenticalClassifiers(t *testing.T) {
	labels := []int{0, 1, 0, 1, 0, 1}
	preds := []int{0, 1, 1, 1, 0, 0}
	res, err := McNemar(preds, preds, labels)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue != 1 || res.Statistic != 0 {
		t.Fatalf("identical classifiers: stat %v p %v", res.Statistic, res.PValue)
	}
	if res.Significant(0.05) {
		t.Fatal("identical classifiers flagged significant")
	}
}

func TestMcNemarOneSidedDominance(t *testing.T) {
	// A is right on 40 instances where B is wrong; B never wins.
	n := 40
	labels := make([]int, n)
	predsA := make([]int, n)
	predsB := make([]int, n)
	for i := range labels {
		labels[i] = 1
		predsA[i] = 1
		predsB[i] = 0
	}
	res, err := McNemar(predsA, predsB, labels)
	if err != nil {
		t.Fatal(err)
	}
	if res.BOnly != 40 || res.COnly != 0 {
		t.Fatalf("discordant counts %d/%d", res.BOnly, res.COnly)
	}
	// Statistic = (40-1)^2/40 = 38.025; p tiny.
	if math.Abs(res.Statistic-38.025) > 1e-9 {
		t.Fatalf("statistic %v", res.Statistic)
	}
	if !res.Significant(0.001) {
		t.Fatalf("clear dominance p=%v not significant", res.PValue)
	}
}

func TestMcNemarBalancedDisagreement(t *testing.T) {
	// A and B each uniquely win 10 instances: no systematic difference.
	labels := make([]int, 20)
	predsA := make([]int, 20)
	predsB := make([]int, 20)
	for i := 0; i < 10; i++ {
		labels[i] = 1
		predsA[i] = 1 // A right
		predsB[i] = 0 // B wrong
	}
	for i := 10; i < 20; i++ {
		labels[i] = 1
		predsA[i] = 0
		predsB[i] = 1
	}
	res, err := McNemar(predsA, predsB, labels)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant(0.05) {
		t.Fatalf("balanced disagreement p=%v flagged significant", res.PValue)
	}
	// Known value: |10-10|-1 clamps to 0 → statistic 0, p 1.
	if res.Statistic != 0 {
		t.Fatalf("statistic %v, want 0", res.Statistic)
	}
}

func TestMcNemarKnownChiSquare(t *testing.T) {
	// b=15, c=5: stat = (|10|-1)^2/20 = 4.05, p ≈ 0.0441.
	labels := make([]int, 20)
	predsA := make([]int, 20)
	predsB := make([]int, 20)
	for i := 0; i < 15; i++ {
		labels[i], predsA[i], predsB[i] = 1, 1, 0
	}
	for i := 15; i < 20; i++ {
		labels[i], predsA[i], predsB[i] = 1, 0, 1
	}
	res, err := McNemar(predsA, predsB, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Statistic-4.05) > 1e-9 {
		t.Fatalf("statistic %v, want 4.05", res.Statistic)
	}
	if math.Abs(res.PValue-0.0441) > 0.001 {
		t.Fatalf("p-value %v, want ~0.0441", res.PValue)
	}
}

func TestMcNemarErrors(t *testing.T) {
	if _, err := McNemar([]int{1}, []int{1, 0}, []int{1, 0}); err == nil {
		t.Fatal("accepted length mismatch")
	}
	if _, err := McNemar(nil, nil, nil); err == nil {
		t.Fatal("accepted empty input")
	}
}

func TestChi2Survival(t *testing.T) {
	// Known 1-dof quantiles: P(X >= 3.841) ≈ 0.05, P(X >= 6.635) ≈ 0.01.
	if p := chi2Survival1(3.841); math.Abs(p-0.05) > 0.001 {
		t.Fatalf("chi2 sf(3.841) = %v", p)
	}
	if p := chi2Survival1(6.635); math.Abs(p-0.01) > 0.001 {
		t.Fatalf("chi2 sf(6.635) = %v", p)
	}
	if chi2Survival1(0) != 1 || chi2Survival1(-1) != 1 {
		t.Fatal("chi2 sf at zero wrong")
	}
}

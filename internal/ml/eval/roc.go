package eval

import (
	"fmt"
	"sort"
)

// AUC computes the area under the ROC curve from anomaly/posterior scores
// (higher = more positive) and binary labels (1 = positive), using the
// rank-sum (Mann-Whitney) formulation with midrank tie handling.
func AUC(scores []float64, labels []int) (float64, error) {
	if len(scores) != len(labels) {
		return 0, fmt.Errorf("eval: %d scores but %d labels", len(scores), len(labels))
	}
	nPos, nNeg := 0, 0
	for _, l := range labels {
		switch l {
		case 0:
			nNeg++
		case 1:
			nPos++
		default:
			return 0, fmt.Errorf("eval: AUC labels must be 0/1, got %d", l)
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0, fmt.Errorf("eval: AUC needs both classes (pos=%d neg=%d)", nPos, nNeg)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	// Midranks over tied score groups.
	ranks := make([]float64, len(scores))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		mid := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mid
		}
		i = j + 1
	}
	sumPos := 0.0
	for i, l := range labels {
		if l == 1 {
			sumPos += ranks[i]
		}
	}
	u := sumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg)), nil
}

// ROCPoint is one operating point of a ROC curve.
type ROCPoint struct {
	Threshold float64
	TPR       float64 // true-positive rate (recall)
	FPR       float64 // false-positive rate
}

// ROC returns the ROC curve points sweeping the threshold over every
// distinct score, from the most permissive to the strictest.
func ROC(scores []float64, labels []int) ([]ROCPoint, error) {
	if len(scores) != len(labels) || len(scores) == 0 {
		return nil, fmt.Errorf("eval: bad ROC input (%d scores, %d labels)", len(scores), len(labels))
	}
	nPos, nNeg := 0, 0
	for _, l := range labels {
		if l == 1 {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return nil, fmt.Errorf("eval: ROC needs both classes")
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	// Descending by score: lowering the threshold admits more positives.
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	var out []ROCPoint
	tp, fp := 0, 0
	for i := 0; i < len(idx); {
		thr := scores[idx[i]]
		for i < len(idx) && scores[idx[i]] == thr {
			if labels[idx[i]] == 1 {
				tp++
			} else {
				fp++
			}
			i++
		}
		out = append(out, ROCPoint{
			Threshold: thr,
			TPR:       float64(tp) / float64(nPos),
			FPR:       float64(fp) / float64(nNeg),
		})
	}
	return out, nil
}

package eval

import (
	"testing"

	"repro/internal/infer"
	"repro/internal/ml"
	"repro/internal/ml/linear"
	"repro/internal/ml/mltest"
)

func TestStratifiedFoldsDeterministic(t *testing.T) {
	y := make([]int, 100)
	for i := range y {
		y[i] = i % 3
	}
	a := stratifiedFolds(y, 3, 5, 42)
	b := stratifiedFolds(y, 3, 5, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fold assignment not deterministic at row %d", i)
		}
	}
	// Stratification: each class spreads evenly across folds.
	counts := map[[2]int]int{}
	for i, f := range a {
		counts[[2]int{y[i], f}]++
	}
	for cls := 0; cls < 3; cls++ {
		for f := 0; f < 5; f++ {
			if n := counts[[2]int{cls, f}]; n < 6 || n > 7 {
				t.Fatalf("class %d fold %d has %d rows, want 6-7", cls, f, n)
			}
		}
	}
}

func TestCrossValidateQuant(t *testing.T) {
	x, y := mltest.ThreeBlobs(5, 200)
	factory := func() ml.Classifier { lg := linear.NewLogistic(); lg.Seed = 1; return lg }
	r, err := CrossValidateQuant(factory, x, y, 3, 5, 9, infer.Int8, CVWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if r.Classifier == "" || r.Precision != infer.Int8 || r.Rows != len(x) {
		t.Fatalf("report header %+v", r)
	}
	if r.Agreement < 0.95 {
		t.Fatalf("agreement %.4f too low for well-separated blobs", r.Agreement)
	}
	if r.DeltaF1 != r.QuantMacroF1-r.FloatMacroF1 {
		t.Fatalf("delta mismatch: %+v", r)
	}
	// The float leg of the report must match plain CrossValidate on the
	// same folds.
	cv, err := CrossValidate(factory, x, y, 3, 5, 9, CVWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := cv.Confusion.MacroF1(); got != r.FloatMacroF1 {
		t.Fatalf("float macro-F1 %.6f, CrossValidate %.6f", r.FloatMacroF1, got)
	}
	// Float64 is not a quantized precision.
	if _, err := CrossValidateQuant(factory, x, y, 3, 5, 9, infer.Float64); err == nil {
		t.Fatal("want error for Float64 precision")
	}
}

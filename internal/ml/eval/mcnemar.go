package eval

import (
	"fmt"
	"math"
)

// McNemarResult is the outcome of McNemar's paired test between two
// classifiers evaluated on the same instances.
type McNemarResult struct {
	// BOnly counts instances classifier A got right and B got wrong;
	// COnly the reverse.
	BOnly, COnly int
	// Statistic is the continuity-corrected chi-square statistic
	// (1 degree of freedom).
	Statistic float64
	// PValue is the two-sided p-value.
	PValue float64
}

// Significant reports whether the accuracy difference is significant at
// the given alpha (e.g. 0.05).
func (m *McNemarResult) Significant(alpha float64) bool {
	return m.PValue < alpha
}

// McNemar runs McNemar's test with Edwards' continuity correction on two
// classifiers' predictions over the same labelled instances. It answers
// "is the disagreement between A and B systematic, or coin-flip noise?" —
// the standard check before claiming one detector beats another on a
// shared test set.
func McNemar(predsA, predsB, labels []int) (*McNemarResult, error) {
	if len(predsA) != len(labels) || len(predsB) != len(labels) {
		return nil, fmt.Errorf("eval: McNemar length mismatch (%d, %d, %d)",
			len(predsA), len(predsB), len(labels))
	}
	if len(labels) == 0 {
		return nil, fmt.Errorf("eval: McNemar on empty test set")
	}
	res := &McNemarResult{}
	for i, y := range labels {
		aOK := predsA[i] == y
		bOK := predsB[i] == y
		switch {
		case aOK && !bOK:
			res.BOnly++
		case !aOK && bOK:
			res.COnly++
		}
	}
	n := res.BOnly + res.COnly
	if n == 0 {
		// Identical error patterns: no evidence of difference.
		res.Statistic = 0
		res.PValue = 1
		return res, nil
	}
	d := math.Abs(float64(res.BOnly-res.COnly)) - 1 // continuity correction
	if d < 0 {
		d = 0
	}
	res.Statistic = d * d / float64(n)
	res.PValue = chi2Survival1(res.Statistic)
	return res, nil
}

// chi2Survival1 returns P(X >= x) for a chi-square distribution with one
// degree of freedom: erfc(sqrt(x/2)).
func chi2Survival1(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Erfc(math.Sqrt(x / 2))
}

// Package eval implements the evaluation protocol of the paper: accuracy,
// confusion matrices, per-class metrics, and train/test harnesses
// mirroring WEKA's "supplied test set" mode.
package eval

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/infer"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// Training instruments: how many models and CV folds this process fitted
// and how long training/evaluation take per call.
var (
	mModelsTrained = obs.GetCounter("ml.models_trained")
	mFoldsTrained  = obs.GetCounter("ml.folds_trained")
	mTrainSeconds  = obs.GetHistogram("ml.train_seconds", obs.TimeBuckets)
	mTestSeconds   = obs.GetHistogram("ml.test_seconds", obs.TimeBuckets)
	mFoldSeconds   = obs.GetHistogram("ml.fold_train_seconds", obs.TimeBuckets)
)

// Confusion is a confusion matrix: Counts[actual][predicted].
type Confusion struct {
	NumClasses int
	Counts     [][]int
}

// NewConfusion allocates a k-class confusion matrix.
func NewConfusion(k int) *Confusion {
	c := &Confusion{NumClasses: k, Counts: make([][]int, k)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, k)
	}
	return c
}

// Observe records one (actual, predicted) pair.
func (c *Confusion) Observe(actual, predicted int) {
	c.Counts[actual][predicted]++
}

// Total returns the number of observed instances.
func (c *Confusion) Total() int {
	n := 0
	for _, row := range c.Counts {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Accuracy returns the fraction of correctly classified instances.
func (c *Confusion) Accuracy() float64 {
	n := c.Total()
	if n == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < c.NumClasses; i++ {
		correct += c.Counts[i][i]
	}
	return float64(correct) / float64(n)
}

// Recall returns the per-class recall (a.k.a. per-class accuracy in the
// paper's Figure 18): correct predictions of class k over actual class-k
// instances. Classes with no instances report 0.
func (c *Confusion) Recall(class int) float64 {
	total := 0
	for _, v := range c.Counts[class] {
		total += v
	}
	if total == 0 {
		return 0
	}
	return float64(c.Counts[class][class]) / float64(total)
}

// Precision returns correct predictions of class k over all predictions
// of class k.
func (c *Confusion) Precision(class int) float64 {
	total := 0
	for a := 0; a < c.NumClasses; a++ {
		total += c.Counts[a][class]
	}
	if total == 0 {
		return 0
	}
	return float64(c.Counts[class][class]) / float64(total)
}

// F1 returns the harmonic mean of precision and recall for a class.
func (c *Confusion) F1(class int) float64 {
	p, r := c.Precision(class), c.Recall(class)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// FalsePositiveRate returns, for one class, the fraction of instances of
// every other class that were predicted as this class: FP / (FP + TN).
// For the binary detector (class 1 = malware) this is the false-alarm
// rate on benign windows — the operational cost the online smoothing
// exists to bound. Returns 0 when no other-class instances were observed.
func (c *Confusion) FalsePositiveRate(class int) float64 {
	fp, others := 0, 0
	for a := 0; a < c.NumClasses; a++ {
		if a == class {
			continue
		}
		for p, v := range c.Counts[a] {
			others += v
			if p == class {
				fp += v
			}
		}
	}
	if others == 0 {
		return 0
	}
	return float64(fp) / float64(others)
}

// MacroF1 averages F1 over all classes, weighting each class equally
// regardless of support — the headline that degrades first when a rare
// class's detection quality collapses.
func (c *Confusion) MacroF1() float64 {
	if c.NumClasses == 0 {
		return 0
	}
	sum := 0.0
	for k := 0; k < c.NumClasses; k++ {
		sum += c.F1(k)
	}
	return sum / float64(c.NumClasses)
}

// Merge adds other's counts into c. Integer counts commute, so merging
// per-shard matrices in any order yields the same pooled result — the
// property the streaming quality scoreboard and parallel CV rely on.
func (c *Confusion) Merge(other *Confusion) error {
	if other == nil {
		return nil
	}
	if other.NumClasses != c.NumClasses {
		return fmt.Errorf("eval: merging %d-class confusion into %d-class",
			other.NumClasses, c.NumClasses)
	}
	for a := range other.Counts {
		for p, v := range other.Counts[a] {
			c.Counts[a][p] += v
		}
	}
	return nil
}

// String renders the matrix with actual classes as rows.
func (c *Confusion) String() string {
	var b strings.Builder
	for i, row := range c.Counts {
		fmt.Fprintf(&b, "actual %d:", i)
		for _, v := range row {
			fmt.Fprintf(&b, " %6d", v)
		}
		b.WriteByte('\n')
		_ = i
	}
	return b.String()
}

// Result is the outcome of evaluating a trained classifier on a test set.
type Result struct {
	Classifier string
	Confusion  *Confusion
	// TrainSeconds and TestSeconds hold wall-clock costs when measured by
	// the harness (zero otherwise).
	TrainSeconds float64
	TestSeconds  float64
}

// Accuracy is shorthand for the confusion accuracy.
func (r *Result) Accuracy() float64 { return r.Confusion.Accuracy() }

// batchPredict routes a test batch through the compiled inference
// engine when the classifier has a kernel, and through the ml.Batch
// interpreted fallback otherwise. An untrained model surfaces as
// ml.ErrNotTrained either way.
func batchPredict(c ml.Classifier, dst []int, X [][]float64) error {
	if bp, ok := c.(ml.BatchPredictor); ok {
		return bp.PredictBatch(dst, X)
	}
	p, err := infer.Compile(c)
	if err == nil {
		return p.PredictParallel(dst, X, 0)
	}
	if !errors.Is(err, infer.ErrNotCompilable) {
		return err
	}
	return ml.Batch(c).PredictBatch(dst, X)
}

// Evaluate runs a trained classifier over a test set. Classifiers with a
// compiled kernel (see internal/infer) predict the whole batch through
// it; the rest fall back to per-row interpreted Predict.
func Evaluate(c ml.Classifier, xTest [][]float64, yTest []int, numClasses int) (*Result, error) {
	if len(xTest) != len(yTest) {
		return nil, fmt.Errorf("eval: %d rows but %d labels", len(xTest), len(yTest))
	}
	if len(xTest) == 0 {
		return nil, fmt.Errorf("eval: empty test set")
	}
	start := time.Now()
	conf := NewConfusion(numClasses)
	preds := make([]int, len(xTest))
	if err := batchPredict(c, preds, xTest); err != nil {
		return nil, fmt.Errorf("eval: %s: %w", c.Name(), err)
	}
	for i, p := range preds {
		if p < 0 || p >= numClasses {
			return nil, fmt.Errorf("eval: %s predicted out-of-range label %d", c.Name(), p)
		}
		conf.Observe(yTest[i], p)
	}
	elapsed := time.Since(start).Seconds()
	mTestSeconds.Observe(elapsed)
	return &Result{Classifier: c.Name(), Confusion: conf, TestSeconds: elapsed}, nil
}

// TrainAndTest fits the classifier on the training split and evaluates on
// the test split — WEKA's "supplied test set" protocol used throughout the
// paper.
func TrainAndTest(c ml.Classifier, xTrain [][]float64, yTrain []int,
	xTest [][]float64, yTest []int, numClasses int) (*Result, error) {
	start := time.Now()
	if err := c.Train(xTrain, yTrain, numClasses); err != nil {
		return nil, fmt.Errorf("eval: training %s: %w", c.Name(), err)
	}
	trainSeconds := time.Since(start).Seconds()
	mModelsTrained.Inc()
	mTrainSeconds.Observe(trainSeconds)
	obs.Log().Debug("model trained", "classifier", c.Name(),
		"rows", len(xTrain), "classes", numClasses, "seconds", trainSeconds)
	res, err := Evaluate(c, xTest, yTest, numClasses)
	if err != nil {
		return nil, err
	}
	res.TrainSeconds = trainSeconds
	return res, nil
}

// CVOption configures CrossValidate.
type CVOption func(*cvOptions)

type cvOptions struct {
	workers int
}

// CVWorkers bounds the number of folds trained concurrently. 0 (the
// default) uses the process-wide worker count; 1 forces the serial path.
func CVWorkers(n int) CVOption {
	return func(o *cvOptions) { o.workers = n }
}

// CrossValidate performs stratified k-fold cross validation using factory
// to produce a fresh classifier per fold, and returns the pooled confusion
// matrix over all folds.
//
// Folds train concurrently (see CVWorkers): each fold's classifier is
// seeded by the factory, fold assignment is fixed before fan-out, and the
// per-fold confusions merge in fold order, so the pooled result is
// identical at any worker count. The factory must return a fresh
// classifier per call and must itself be safe for concurrent use.
func CrossValidate(factory func() ml.Classifier, x [][]float64, y []int,
	numClasses, folds int, seed uint64, opts ...CVOption) (*Result, error) {
	var o cvOptions
	for _, opt := range opts {
		opt(&o)
	}
	if folds < 2 {
		return nil, fmt.Errorf("eval: folds %d < 2", folds)
	}
	if len(x) != len(y) || len(x) < folds {
		return nil, fmt.Errorf("eval: bad shape for %d-fold CV over %d rows", folds, len(x))
	}
	// Stratified fold assignment, fixed before any fold trains.
	fold := stratifiedFolds(y, numClasses, folds, seed)
	// Fold scratch — split slices, prediction buffer, and a per-fold
	// confusion matrix — is pooled so concurrent workers each hold one
	// set and successive folds on the same worker reuse it instead of
	// reallocating ~len(x) slots per fold.
	pool := sync.Pool{New: func() any { return &foldScratch{} }}
	conf := NewConfusion(numClasses)
	name := ""
	var mu sync.Mutex
	err := parallel.ForEach(
		parallel.Options{Name: "eval.cv", Workers: o.workers},
		folds, func(f int) error {
			s := pool.Get().(*foldScratch)
			defer pool.Put(s)
			s.reset(numClasses)
			for i := range x {
				if fold[i] == f {
					s.xte = append(s.xte, x[i])
					s.yte = append(s.yte, y[i])
				} else {
					s.xtr = append(s.xtr, x[i])
					s.ytr = append(s.ytr, y[i])
				}
			}
			c := factory()
			foldStart := time.Now()
			if err := c.Train(s.xtr, s.ytr, numClasses); err != nil {
				return fmt.Errorf("eval: CV fold %d: %w", f, err)
			}
			mFoldsTrained.Inc()
			mFoldSeconds.Observe(time.Since(foldStart).Seconds())
			if cap(s.preds) < len(s.xte) {
				s.preds = make([]int, len(s.xte))
			}
			preds := s.preds[:len(s.xte)]
			if err := batchPredict(c, preds, s.xte); err != nil {
				return fmt.Errorf("eval: CV fold %d: %w", f, err)
			}
			for i, p := range preds {
				s.conf.Observe(s.yte[i], p)
			}
			obs.Log().Debug("cv fold trained", "classifier", c.Name(), "fold", f, "folds", folds)
			// Merge into the pooled matrix before releasing the scratch.
			// Integer counts commute, so the pooled result is identical at
			// any worker count and fold completion order.
			mu.Lock()
			name = c.Name()
			for a := 0; a < numClasses; a++ {
				for p := 0; p < numClasses; p++ {
					conf.Counts[a][p] += s.conf.Counts[a][p]
				}
			}
			mu.Unlock()
			return nil
		})
	if err != nil {
		return nil, err
	}
	return &Result{Classifier: name, Confusion: conf}, nil
}

// stratifiedFolds assigns every row a fold index, shuffling within each
// class so fold class balance mirrors the dataset. The assignment is a
// pure function of (y, numClasses, folds, seed), so CrossValidate and
// CrossValidateQuant running the same parameters split identically —
// which is what makes their F1 numbers comparable fold for fold.
func stratifiedFolds(y []int, numClasses, folds int, seed uint64) []int {
	byClass := make(map[int][]int)
	for i, label := range y {
		byClass[label] = append(byClass[label], i)
	}
	src := rng.New(seed)
	fold := make([]int, len(y))
	for label := 0; label < numClasses; label++ {
		rows := byClass[label]
		src.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		for i, r := range rows {
			fold[r] = i % folds
		}
	}
	return fold
}

// foldScratch is one CV worker's reusable buffers.
type foldScratch struct {
	xtr, xte [][]float64
	ytr, yte []int
	preds    []int
	conf     *Confusion
}

// reset empties the split slices (keeping capacity) and zeroes the
// confusion matrix, reallocating it only on a class-count change.
func (s *foldScratch) reset(numClasses int) {
	s.xtr, s.xte = s.xtr[:0], s.xte[:0]
	s.ytr, s.yte = s.ytr[:0], s.yte[:0]
	if s.conf == nil || s.conf.NumClasses != numClasses {
		s.conf = NewConfusion(numClasses)
		return
	}
	for _, row := range s.conf.Counts {
		for i := range row {
			row[i] = 0
		}
	}
}

// WriteReport renders a per-class classification report (precision,
// recall, F1, support) plus overall accuracy — the summary WEKA prints
// after evaluation. classNames maps label indices to display names; nil
// uses numeric labels.
func (r *Result) WriteReport(w io.Writer, classNames []string) error {
	c := r.Confusion
	name := func(i int) string {
		if i < len(classNames) {
			return classNames[i]
		}
		return fmt.Sprintf("class %d", i)
	}
	if _, err := fmt.Fprintf(w, "%-12s %9s %9s %9s %9s\n",
		r.Classifier, "precision", "recall", "f1", "support"); err != nil {
		return err
	}
	for i := 0; i < c.NumClasses; i++ {
		support := 0
		for _, v := range c.Counts[i] {
			support += v
		}
		fmt.Fprintf(w, "%-12s %8.1f%% %8.1f%% %8.1f%% %9d\n",
			name(i), c.Precision(i)*100, c.Recall(i)*100, c.F1(i)*100, support)
	}
	_, err := fmt.Fprintf(w, "%-12s %29.1f%% %9d\n", "accuracy",
		c.Accuracy()*100, c.Total())
	return err
}

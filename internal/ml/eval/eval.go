// Package eval implements the evaluation protocol of the paper: accuracy,
// confusion matrices, per-class metrics, and train/test harnesses
// mirroring WEKA's "supplied test set" mode.
package eval

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// Training instruments: how many models and CV folds this process fitted
// and how long training/evaluation take per call.
var (
	mModelsTrained = obs.GetCounter("ml.models_trained")
	mFoldsTrained  = obs.GetCounter("ml.folds_trained")
	mTrainSeconds  = obs.GetHistogram("ml.train_seconds", obs.TimeBuckets)
	mTestSeconds   = obs.GetHistogram("ml.test_seconds", obs.TimeBuckets)
	mFoldSeconds   = obs.GetHistogram("ml.fold_train_seconds", obs.TimeBuckets)
)

// Confusion is a confusion matrix: Counts[actual][predicted].
type Confusion struct {
	NumClasses int
	Counts     [][]int
}

// NewConfusion allocates a k-class confusion matrix.
func NewConfusion(k int) *Confusion {
	c := &Confusion{NumClasses: k, Counts: make([][]int, k)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, k)
	}
	return c
}

// Observe records one (actual, predicted) pair.
func (c *Confusion) Observe(actual, predicted int) {
	c.Counts[actual][predicted]++
}

// Total returns the number of observed instances.
func (c *Confusion) Total() int {
	n := 0
	for _, row := range c.Counts {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Accuracy returns the fraction of correctly classified instances.
func (c *Confusion) Accuracy() float64 {
	n := c.Total()
	if n == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < c.NumClasses; i++ {
		correct += c.Counts[i][i]
	}
	return float64(correct) / float64(n)
}

// Recall returns the per-class recall (a.k.a. per-class accuracy in the
// paper's Figure 18): correct predictions of class k over actual class-k
// instances. Classes with no instances report 0.
func (c *Confusion) Recall(class int) float64 {
	total := 0
	for _, v := range c.Counts[class] {
		total += v
	}
	if total == 0 {
		return 0
	}
	return float64(c.Counts[class][class]) / float64(total)
}

// Precision returns correct predictions of class k over all predictions
// of class k.
func (c *Confusion) Precision(class int) float64 {
	total := 0
	for a := 0; a < c.NumClasses; a++ {
		total += c.Counts[a][class]
	}
	if total == 0 {
		return 0
	}
	return float64(c.Counts[class][class]) / float64(total)
}

// F1 returns the harmonic mean of precision and recall for a class.
func (c *Confusion) F1(class int) float64 {
	p, r := c.Precision(class), c.Recall(class)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the matrix with actual classes as rows.
func (c *Confusion) String() string {
	var b strings.Builder
	for i, row := range c.Counts {
		fmt.Fprintf(&b, "actual %d:", i)
		for _, v := range row {
			fmt.Fprintf(&b, " %6d", v)
		}
		b.WriteByte('\n')
		_ = i
	}
	return b.String()
}

// Result is the outcome of evaluating a trained classifier on a test set.
type Result struct {
	Classifier string
	Confusion  *Confusion
	// TrainSeconds and TestSeconds hold wall-clock costs when measured by
	// the harness (zero otherwise).
	TrainSeconds float64
	TestSeconds  float64
}

// Accuracy is shorthand for the confusion accuracy.
func (r *Result) Accuracy() float64 { return r.Confusion.Accuracy() }

// Evaluate runs a trained classifier over a test set.
func Evaluate(c ml.Classifier, xTest [][]float64, yTest []int, numClasses int) (*Result, error) {
	if len(xTest) != len(yTest) {
		return nil, fmt.Errorf("eval: %d rows but %d labels", len(xTest), len(yTest))
	}
	if len(xTest) == 0 {
		return nil, fmt.Errorf("eval: empty test set")
	}
	start := time.Now()
	conf := NewConfusion(numClasses)
	for i, x := range xTest {
		p := c.Predict(x)
		if p < 0 || p >= numClasses {
			return nil, fmt.Errorf("eval: %s predicted out-of-range label %d", c.Name(), p)
		}
		conf.Observe(yTest[i], p)
	}
	elapsed := time.Since(start).Seconds()
	mTestSeconds.Observe(elapsed)
	return &Result{Classifier: c.Name(), Confusion: conf, TestSeconds: elapsed}, nil
}

// TrainAndTest fits the classifier on the training split and evaluates on
// the test split — WEKA's "supplied test set" protocol used throughout the
// paper.
func TrainAndTest(c ml.Classifier, xTrain [][]float64, yTrain []int,
	xTest [][]float64, yTest []int, numClasses int) (*Result, error) {
	start := time.Now()
	if err := c.Train(xTrain, yTrain, numClasses); err != nil {
		return nil, fmt.Errorf("eval: training %s: %w", c.Name(), err)
	}
	trainSeconds := time.Since(start).Seconds()
	mModelsTrained.Inc()
	mTrainSeconds.Observe(trainSeconds)
	obs.Log().Debug("model trained", "classifier", c.Name(),
		"rows", len(xTrain), "classes", numClasses, "seconds", trainSeconds)
	res, err := Evaluate(c, xTest, yTest, numClasses)
	if err != nil {
		return nil, err
	}
	res.TrainSeconds = trainSeconds
	return res, nil
}

// CVOption configures CrossValidate.
type CVOption func(*cvOptions)

type cvOptions struct {
	workers int
}

// CVWorkers bounds the number of folds trained concurrently. 0 (the
// default) uses the process-wide worker count; 1 forces the serial path.
func CVWorkers(n int) CVOption {
	return func(o *cvOptions) { o.workers = n }
}

// CrossValidate performs stratified k-fold cross validation using factory
// to produce a fresh classifier per fold, and returns the pooled confusion
// matrix over all folds.
//
// Folds train concurrently (see CVWorkers): each fold's classifier is
// seeded by the factory, fold assignment is fixed before fan-out, and the
// per-fold confusions merge in fold order, so the pooled result is
// identical at any worker count. The factory must return a fresh
// classifier per call and must itself be safe for concurrent use.
func CrossValidate(factory func() ml.Classifier, x [][]float64, y []int,
	numClasses, folds int, seed uint64, opts ...CVOption) (*Result, error) {
	var o cvOptions
	for _, opt := range opts {
		opt(&o)
	}
	if folds < 2 {
		return nil, fmt.Errorf("eval: folds %d < 2", folds)
	}
	if len(x) != len(y) || len(x) < folds {
		return nil, fmt.Errorf("eval: bad shape for %d-fold CV over %d rows", folds, len(x))
	}
	// Stratified fold assignment, fixed before any fold trains.
	byClass := make(map[int][]int)
	for i, label := range y {
		byClass[label] = append(byClass[label], i)
	}
	src := rng.New(seed)
	fold := make([]int, len(x))
	for label := 0; label < numClasses; label++ {
		rows := byClass[label]
		src.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		for i, r := range rows {
			fold[r] = i % folds
		}
	}
	type foldResult struct {
		name string
		conf *Confusion
	}
	results, err := parallel.Map(
		parallel.Options{Name: "eval.cv", Workers: o.workers},
		folds, func(f int) (foldResult, error) {
			var xtr, xte [][]float64
			var ytr, yte []int
			for i := range x {
				if fold[i] == f {
					xte = append(xte, x[i])
					yte = append(yte, y[i])
				} else {
					xtr = append(xtr, x[i])
					ytr = append(ytr, y[i])
				}
			}
			c := factory()
			foldStart := time.Now()
			if err := c.Train(xtr, ytr, numClasses); err != nil {
				return foldResult{}, fmt.Errorf("eval: CV fold %d: %w", f, err)
			}
			mFoldsTrained.Inc()
			mFoldSeconds.Observe(time.Since(foldStart).Seconds())
			conf := NewConfusion(numClasses)
			for i := range xte {
				conf.Observe(yte[i], c.Predict(xte[i]))
			}
			obs.Log().Debug("cv fold trained", "classifier", c.Name(), "fold", f, "folds", folds)
			return foldResult{name: c.Name(), conf: conf}, nil
		})
	if err != nil {
		return nil, err
	}
	// Merge in fold order. Integer counts commute, but a fixed order keeps
	// the path deterministic by construction, not by arithmetic accident.
	conf := NewConfusion(numClasses)
	name := ""
	for _, fr := range results {
		name = fr.name
		for a := 0; a < numClasses; a++ {
			for p := 0; p < numClasses; p++ {
				conf.Counts[a][p] += fr.conf.Counts[a][p]
			}
		}
	}
	return &Result{Classifier: name, Confusion: conf}, nil
}

// WriteReport renders a per-class classification report (precision,
// recall, F1, support) plus overall accuracy — the summary WEKA prints
// after evaluation. classNames maps label indices to display names; nil
// uses numeric labels.
func (r *Result) WriteReport(w io.Writer, classNames []string) error {
	c := r.Confusion
	name := func(i int) string {
		if i < len(classNames) {
			return classNames[i]
		}
		return fmt.Sprintf("class %d", i)
	}
	if _, err := fmt.Fprintf(w, "%-12s %9s %9s %9s %9s\n",
		r.Classifier, "precision", "recall", "f1", "support"); err != nil {
		return err
	}
	for i := 0; i < c.NumClasses; i++ {
		support := 0
		for _, v := range c.Counts[i] {
			support += v
		}
		fmt.Fprintf(w, "%-12s %8.1f%% %8.1f%% %8.1f%% %9d\n",
			name(i), c.Precision(i)*100, c.Recall(i)*100, c.F1(i)*100, support)
	}
	_, err := fmt.Fprintf(w, "%-12s %29.1f%% %9d\n", "accuracy",
		c.Accuracy()*100, c.Total())
	return err
}

package eval

import (
	"math"
	"strings"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/bayes"
	"repro/internal/ml/mltest"
	"repro/internal/ml/oner"
)

func TestConfusionMetrics(t *testing.T) {
	c := NewConfusion(2)
	// actual 0: 8 right, 2 wrong; actual 1: 6 right, 4 wrong.
	for i := 0; i < 8; i++ {
		c.Observe(0, 0)
	}
	for i := 0; i < 2; i++ {
		c.Observe(0, 1)
	}
	for i := 0; i < 6; i++ {
		c.Observe(1, 1)
	}
	for i := 0; i < 4; i++ {
		c.Observe(1, 0)
	}
	if c.Total() != 20 {
		t.Fatalf("total %d", c.Total())
	}
	if math.Abs(c.Accuracy()-0.7) > 1e-12 {
		t.Fatalf("accuracy %v, want 0.7", c.Accuracy())
	}
	if math.Abs(c.Recall(0)-0.8) > 1e-12 {
		t.Fatalf("recall(0) %v", c.Recall(0))
	}
	if math.Abs(c.Recall(1)-0.6) > 1e-12 {
		t.Fatalf("recall(1) %v", c.Recall(1))
	}
	if math.Abs(c.Precision(0)-8.0/12) > 1e-12 {
		t.Fatalf("precision(0) %v", c.Precision(0))
	}
	wantF1 := 2 * (8.0 / 12) * 0.8 / (8.0/12 + 0.8)
	if math.Abs(c.F1(0)-wantF1) > 1e-12 {
		t.Fatalf("f1(0) %v, want %v", c.F1(0), wantF1)
	}
}

func TestConfusionEmptyClass(t *testing.T) {
	c := NewConfusion(3)
	c.Observe(0, 0)
	if c.Recall(2) != 0 || c.Precision(2) != 0 || c.F1(2) != 0 {
		t.Fatal("empty class metrics not zero")
	}
	if c.FalsePositiveRate(0) != 0 {
		t.Fatal("FPR with no other-class instances not zero")
	}
}

func TestConfusionFPRMacroF1Merge(t *testing.T) {
	c := NewConfusion(2)
	// actual 0 (benign): 8 TN, 2 FP; actual 1 (malware): 6 TP, 4 FN.
	for i := 0; i < 8; i++ {
		c.Observe(0, 0)
	}
	for i := 0; i < 2; i++ {
		c.Observe(0, 1)
	}
	for i := 0; i < 6; i++ {
		c.Observe(1, 1)
	}
	for i := 0; i < 4; i++ {
		c.Observe(1, 0)
	}
	if got := c.FalsePositiveRate(1); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("FPR(malware) = %v, want 0.2", got)
	}
	if got := c.FalsePositiveRate(0); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("FPR(benign) = %v, want 0.4", got)
	}
	want := (c.F1(0) + c.F1(1)) / 2
	if got := c.MacroF1(); math.Abs(got-want) > 1e-12 {
		t.Errorf("MacroF1 = %v, want %v", got, want)
	}

	other := NewConfusion(2)
	other.Observe(1, 1)
	other.Observe(0, 1)
	if err := c.Merge(other); err != nil {
		t.Fatal(err)
	}
	if c.Total() != 22 || c.Counts[1][1] != 7 || c.Counts[0][1] != 3 {
		t.Errorf("merged counts = %v", c.Counts)
	}
	if err := c.Merge(NewConfusion(3)); err == nil {
		t.Error("merging mismatched class counts did not error")
	}
	if err := c.Merge(nil); err != nil {
		t.Errorf("nil merge: %v", err)
	}
}

func TestTrainAndTest(t *testing.T) {
	x, y := mltest.TwoBlobs(1, 200)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	res, err := TrainAndTest(bayes.New(), xtr, ytr, xte, yte, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Classifier != "NaiveBayes" {
		t.Fatalf("classifier name %q", res.Classifier)
	}
	if res.Accuracy() < 0.95 {
		t.Fatalf("accuracy %v", res.Accuracy())
	}
	if res.Confusion.Total() != len(yte) {
		t.Fatal("confusion total != test size")
	}
}

func TestEvaluateErrors(t *testing.T) {
	c := bayes.New()
	x, y := mltest.TwoBlobs(2, 50)
	if err := c.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(c, nil, nil, 2); err == nil {
		t.Fatal("accepted empty test set")
	}
	if _, err := Evaluate(c, x, y[:10], 2); err == nil {
		t.Fatal("accepted length mismatch")
	}
}

func TestCrossValidate(t *testing.T) {
	x, y := mltest.TwoBlobs(3, 150)
	res, err := CrossValidate(func() ml.Classifier { return oner.New() }, x, y, 2, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confusion.Total() != len(y) {
		t.Fatalf("CV observed %d instances, want %d", res.Confusion.Total(), len(y))
	}
	if res.Accuracy() < 0.9 {
		t.Fatalf("CV accuracy %v", res.Accuracy())
	}
}

func TestCrossValidateErrors(t *testing.T) {
	x, y := mltest.TwoBlobs(4, 10)
	if _, err := CrossValidate(func() ml.Classifier { return oner.New() }, x, y, 2, 1, 1); err == nil {
		t.Fatal("accepted folds < 2")
	}
	if _, err := CrossValidate(func() ml.Classifier { return oner.New() }, x[:3], y[:3], 2, 5, 1); err == nil {
		t.Fatal("accepted folds > rows")
	}
}

func TestConfusionString(t *testing.T) {
	c := NewConfusion(2)
	c.Observe(0, 1)
	if c.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestWriteReport(t *testing.T) {
	x, y := mltest.TwoBlobs(5, 100)
	res, err := TrainAndTest(bayes.New(), x[:50], y[:50], x[50:], y[50:], 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := res.WriteReport(&buf, []string{"benign", "malware"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"NaiveBayes", "precision", "benign", "malware", "accuracy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// Unnamed classes fall back to numeric labels.
	var buf2 strings.Builder
	if err := res.WriteReport(&buf2, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), "class 0") {
		t.Fatal("numeric fallback missing")
	}
}

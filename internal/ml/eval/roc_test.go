package eval

import (
	"math"
	"testing"
)

func TestAUCPerfect(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []int{0, 0, 1, 1}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Fatalf("perfect separation AUC %v", auc)
	}
	// Inverted scores give AUC 0.
	inv := []float64{0.9, 0.8, 0.2, 0.1}
	auc, _ = AUC(inv, labels)
	if auc != 0 {
		t.Fatalf("inverted AUC %v", auc)
	}
}

func TestAUCChanceAndTies(t *testing.T) {
	// All scores identical: AUC must be exactly 0.5 via midranks.
	scores := []float64{5, 5, 5, 5, 5, 5}
	labels := []int{0, 1, 0, 1, 0, 1}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("tied AUC %v, want 0.5", auc)
	}
}

func TestAUCKnownValue(t *testing.T) {
	// One inversion among 2x2: AUC = 3/4.
	scores := []float64{0.1, 0.6, 0.4, 0.9}
	labels := []int{0, 0, 1, 1}
	auc, _ := AUC(scores, labels)
	if math.Abs(auc-0.75) > 1e-12 {
		t.Fatalf("AUC %v, want 0.75", auc)
	}
}

func TestAUCErrors(t *testing.T) {
	if _, err := AUC([]float64{1}, []int{1, 0}); err == nil {
		t.Fatal("accepted length mismatch")
	}
	if _, err := AUC([]float64{1, 2}, []int{1, 1}); err == nil {
		t.Fatal("accepted single-class labels")
	}
	if _, err := AUC([]float64{1, 2}, []int{1, 3}); err == nil {
		t.Fatal("accepted non-binary labels")
	}
}

func TestROCCurve(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.6}
	labels := []int{1, 0, 1, 0}
	pts, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d ROC points", len(pts))
	}
	// Monotone non-decreasing TPR and FPR as threshold loosens.
	for i := 1; i < len(pts); i++ {
		if pts[i].TPR < pts[i-1].TPR || pts[i].FPR < pts[i-1].FPR {
			t.Fatal("ROC not monotone")
		}
	}
	last := pts[len(pts)-1]
	if last.TPR != 1 || last.FPR != 1 {
		t.Fatalf("ROC does not end at (1,1): %+v", last)
	}
}

func TestROCErrors(t *testing.T) {
	if _, err := ROC(nil, nil); err == nil {
		t.Fatal("accepted empty input")
	}
	if _, err := ROC([]float64{1, 2}, []int{0, 0}); err == nil {
		t.Fatal("accepted single-class labels")
	}
}

// Quantization accuracy evaluation: the eval-CV counterpart of
// internal/infer's compile-time agreement measurement. Where the
// compile-time number scores a quantized program against its float twin
// on the calibration rows it was built from, CrossValidateQuant runs the
// full stratified k-fold protocol — per fold, calibrate on the training
// split only, then score both programs on the held-out split — so the
// reported agreement and ΔF1 are out-of-sample, the way the paper's
// hardware accuracy deltas would be measured.
package eval

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/infer"
	"repro/internal/ml"
	"repro/internal/parallel"
)

// QuantReport compares a classifier's float64 compiled program against
// its quantized twin under cross validation.
type QuantReport struct {
	Classifier string          `json:"classifier"`
	Precision  infer.Precision `json:"precision"`
	// Agreement is the fraction of held-out rows where the quantized
	// program emits the same label as the float64 program.
	Agreement float64 `json:"agreement"`
	// FloatMacroF1/QuantMacroF1 score each program against ground truth;
	// DeltaF1 = QuantMacroF1 - FloatMacroF1 (negative = quantization
	// cost).
	FloatMacroF1 float64 `json:"float_macro_f1"`
	QuantMacroF1 float64 `json:"quant_macro_f1"`
	DeltaF1      float64 `json:"delta_f1"`
	Rows         int     `json:"rows"`
}

// CrossValidateQuant runs stratified k-fold CV twice over the same fold
// assignment — once through the float64 compiled program, once through
// the quantized program calibrated on each fold's training split — and
// reports label agreement plus the macro-F1 delta. The factory must
// return a fresh classifier per call; fold assignment matches
// CrossValidate for the same (y, numClasses, folds, seed).
func CrossValidateQuant(factory func() ml.Classifier, x [][]float64, y []int,
	numClasses, folds int, seed uint64, prec infer.Precision,
	opts ...CVOption) (*QuantReport, error) {
	var o cvOptions
	for _, opt := range opts {
		opt(&o)
	}
	if folds < 2 {
		return nil, fmt.Errorf("eval: folds %d < 2", folds)
	}
	if len(x) != len(y) || len(x) < folds {
		return nil, fmt.Errorf("eval: bad shape for %d-fold CV over %d rows", folds, len(x))
	}
	if prec == infer.Float64 {
		return nil, fmt.Errorf("eval: CrossValidateQuant needs a quantized precision, got %s", prec)
	}
	fold := stratifiedFolds(y, numClasses, folds, seed)
	fConf := NewConfusion(numClasses)
	qConf := NewConfusion(numClasses)
	name := ""
	agree, total := 0, 0
	var mu sync.Mutex
	err := parallel.ForEach(
		parallel.Options{Name: "eval.cv_quant", Workers: o.workers},
		folds, func(f int) error {
			var xtr, xte [][]float64
			var ytr, yte []int
			for i := range x {
				if fold[i] == f {
					xte = append(xte, x[i])
					yte = append(yte, y[i])
				} else {
					xtr = append(xtr, x[i])
					ytr = append(ytr, y[i])
				}
			}
			c := factory()
			foldStart := time.Now()
			if err := c.Train(xtr, ytr, numClasses); err != nil {
				return fmt.Errorf("eval: quant CV fold %d: %w", f, err)
			}
			mFoldsTrained.Inc()
			mFoldSeconds.Observe(time.Since(foldStart).Seconds())
			fp, err := infer.Compile(c)
			if err != nil {
				return fmt.Errorf("eval: quant CV fold %d: float compile: %w", f, err)
			}
			qp, err := infer.Compile(c,
				infer.WithPrecision(prec), infer.WithCalibration(xtr))
			if err != nil {
				return fmt.Errorf("eval: quant CV fold %d: %s compile: %w", f, prec, err)
			}
			fPred := make([]int, len(xte))
			qPred := make([]int, len(xte))
			if err := fp.Predict(fPred, xte); err != nil {
				return fmt.Errorf("eval: quant CV fold %d: %w", f, err)
			}
			if err := qp.Predict(qPred, xte); err != nil {
				return fmt.Errorf("eval: quant CV fold %d: %w", f, err)
			}
			a := 0
			for i := range fPred {
				if fPred[i] == qPred[i] {
					a++
				}
			}
			mu.Lock()
			defer mu.Unlock()
			name = c.Name()
			agree += a
			total += len(xte)
			for i := range fPred {
				fConf.Observe(yte[i], fPred[i])
				qConf.Observe(yte[i], qPred[i])
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	r := &QuantReport{
		Classifier:   name,
		Precision:    prec,
		FloatMacroF1: fConf.MacroF1(),
		QuantMacroF1: qConf.MacroF1(),
		Rows:         total,
	}
	r.DeltaF1 = r.QuantMacroF1 - r.FloatMacroF1
	if total > 0 {
		r.Agreement = float64(agree) / float64(total)
	}
	return r, nil
}

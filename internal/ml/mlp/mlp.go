// Package mlp implements a multilayer perceptron (WEKA's
// MultilayerPerceptron): one sigmoid hidden layer, softmax output,
// mini-batch SGD with momentum, and internal feature standardization.
// WEKA's default hidden size 'a' = (attributes + classes) / 2 is the
// default here too.
package mlp

import (
	"math"

	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/rng"
)

// mEpochs counts SGD epochs across all MLP fits in the process.
var mEpochs = obs.GetCounter("ml.mlp_epochs")

// MLP is a one-hidden-layer perceptron classifier.
type MLP struct {
	// Hidden is the hidden layer width; 0 means (dim+classes)/2.
	Hidden int
	// Epochs over the training set (default 80).
	Epochs int
	// LR is the learning rate (default 0.3, WEKA's -L default).
	LR float64
	// Momentum (default 0.2, WEKA's -M default).
	Momentum float64
	// Seed controls weight init and shuffling.
	Seed uint64

	w1, w2   [][]float64 // [hidden][dim+1], [classes][hidden+1]
	mean, sd []float64
	k, dim   int
	hidden   int
	trained  bool
}

// New returns an MLP with WEKA's default hyperparameters.
func New() *MLP { return &MLP{Epochs: 80, LR: 0.3, Momentum: 0.2, Seed: 1} }

// Name implements ml.Classifier.
func (m *MLP) Name() string { return "MLP" }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Train implements ml.Classifier.
func (m *MLP) Train(x [][]float64, y []int, numClasses int) error {
	dim, err := ml.CheckTrainingSet(x, y, numClasses)
	if err != nil {
		return err
	}
	if m.Epochs <= 0 {
		m.Epochs = 80
	}
	if m.LR <= 0 {
		m.LR = 0.3
	}
	if m.Momentum < 0 || m.Momentum >= 1 {
		m.Momentum = 0.2
	}
	m.k, m.dim = numClasses, dim
	m.hidden = m.Hidden
	if m.hidden <= 0 {
		m.hidden = (dim + numClasses) / 2
		if m.hidden < 2 {
			m.hidden = 2
		}
	}

	// Standardization statistics.
	m.mean = make([]float64, dim)
	m.sd = make([]float64, dim)
	n := float64(len(x))
	for _, row := range x {
		for j, v := range row {
			m.mean[j] += v
		}
	}
	for j := range m.mean {
		m.mean[j] /= n
	}
	for _, row := range x {
		for j, v := range row {
			d := v - m.mean[j]
			m.sd[j] += d * d
		}
	}
	for j := range m.sd {
		m.sd[j] = math.Sqrt(m.sd[j] / n)
		if m.sd[j] == 0 {
			m.sd[j] = 1
		}
	}
	z := make([][]float64, len(x))
	for i, row := range x {
		z[i] = make([]float64, dim)
		for j, v := range row {
			z[i][j] = (v - m.mean[j]) / m.sd[j]
		}
	}

	src := rng.New(m.Seed)
	initW := func(rows, cols int) [][]float64 {
		w := make([][]float64, rows)
		scale := 1 / math.Sqrt(float64(cols))
		for r := range w {
			w[r] = make([]float64, cols)
			for c := range w[r] {
				w[r][c] = src.Normal(0, scale)
			}
		}
		return w
	}
	m.w1 = initW(m.hidden, dim+1)
	m.w2 = initW(numClasses, m.hidden+1)
	v1 := initZero(m.hidden, dim+1)
	v2 := initZero(numClasses, m.hidden+1)

	order := make([]int, len(x))
	for i := range order {
		order[i] = i
	}
	h := make([]float64, m.hidden)
	out := make([]float64, numClasses)
	dOut := make([]float64, numClasses)
	dHid := make([]float64, m.hidden)

	for epoch := 0; epoch < m.Epochs; epoch++ {
		src.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		lr := m.LR / (1 + 0.002*float64(epoch))
		for _, idx := range order {
			row := z[idx]
			m.forward(row, h, out)
			for c := range dOut {
				dOut[c] = out[c]
				if c == y[idx] {
					dOut[c] -= 1
				}
			}
			// Hidden deltas.
			for j := 0; j < m.hidden; j++ {
				g := 0.0
				for c := 0; c < numClasses; c++ {
					g += dOut[c] * m.w2[c][j]
				}
				dHid[j] = g * h[j] * (1 - h[j])
			}
			// Update output layer.
			for c := 0; c < numClasses; c++ {
				for j := 0; j < m.hidden; j++ {
					v2[c][j] = m.Momentum*v2[c][j] - lr*dOut[c]*h[j]
					m.w2[c][j] += v2[c][j]
				}
				v2[c][m.hidden] = m.Momentum*v2[c][m.hidden] - lr*dOut[c]
				m.w2[c][m.hidden] += v2[c][m.hidden]
			}
			// Update hidden layer.
			for j := 0; j < m.hidden; j++ {
				for i2, v := range row {
					v1[j][i2] = m.Momentum*v1[j][i2] - lr*dHid[j]*v
					m.w1[j][i2] += v1[j][i2]
				}
				v1[j][dim] = m.Momentum*v1[j][dim] - lr*dHid[j]
				m.w1[j][dim] += v1[j][dim]
			}
		}
	}
	mEpochs.Add(int64(m.Epochs))
	m.trained = true
	return nil
}

func initZero(rows, cols int) [][]float64 {
	w := make([][]float64, rows)
	for r := range w {
		w[r] = make([]float64, cols)
	}
	return w
}

// forward computes hidden activations and softmax outputs for a
// standardized row.
func (m *MLP) forward(z []float64, h, out []float64) {
	for j := 0; j < m.hidden; j++ {
		wj := m.w1[j]
		s := wj[m.dim]
		for i, v := range z {
			s += wj[i] * v
		}
		h[j] = sigmoid(s)
	}
	maxS := math.Inf(-1)
	for c := 0; c < m.k; c++ {
		wc := m.w2[c]
		s := wc[m.hidden]
		for j, v := range h {
			s += wc[j] * v
		}
		out[c] = s
		if s > maxS {
			maxS = s
		}
	}
	sum := 0.0
	for c := range out {
		out[c] = math.Exp(out[c] - maxS)
		sum += out[c]
	}
	for c := range out {
		out[c] /= sum
	}
}

// Predict implements ml.Classifier.
func (m *MLP) Predict(features []float64) int {
	return ml.ArgMax(m.Proba(features))
}

// Proba implements ml.ProbClassifier.
func (m *MLP) Proba(features []float64) []float64 {
	if !m.trained {
		panic(ml.ErrNotTrained)
	}
	z := make([]float64, m.dim)
	for j, v := range features {
		z[j] = (v - m.mean[j]) / m.sd[j]
	}
	h := make([]float64, m.hidden)
	out := make([]float64, m.k)
	m.forward(z, h, out)
	return out
}

// Topology returns (inputs, hidden, outputs); the hardware cost model
// sizes the MAC arrays and sigmoid LUTs from it.
func (m *MLP) Topology() (in, hidden, out int) {
	if !m.trained {
		panic(ml.ErrNotTrained)
	}
	return m.dim, m.hidden, m.k
}

// Dim implements ml.Model.
func (m *MLP) Dim() int {
	if !m.trained {
		panic(ml.ErrNotTrained)
	}
	return m.dim
}

// NumClasses implements ml.Model.
func (m *MLP) NumClasses() int {
	if !m.trained {
		panic(ml.ErrNotTrained)
	}
	return m.k
}

// Weights exposes the fitted layers for compilation: w1 is
// [hidden][dim+1] and w2 is [classes][hidden+1], biases last. The
// returned slices are the live model; callers must not mutate them.
func (m *MLP) Weights() (w1, w2 [][]float64) {
	if !m.trained {
		panic(ml.ErrNotTrained)
	}
	return m.w1, m.w2
}

// Scaler exposes the internal standardization statistics (means,
// stddevs) fitted at training time, mirroring linear.Logistic.Scaler.
func (m *MLP) Scaler() (means, stddevs []float64) {
	if !m.trained {
		panic(ml.ErrNotTrained)
	}
	return m.mean, m.sd
}

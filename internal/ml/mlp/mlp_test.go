package mlp

import (
	"math"
	"testing"

	"repro/internal/ml/mltest"
)

func TestMLPSeparable(t *testing.T) {
	x, y := mltest.TwoBlobs(1, 200)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	c := New()
	if err := c.Train(xtr, ytr, 2); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c.Predict, xte, yte); acc < 0.97 {
		t.Fatalf("accuracy %v, want >= 0.97", acc)
	}
}

func TestMLPSolvesXOR(t *testing.T) {
	// The defining capability over the linear models.
	x, y := mltest.XOR(2, 150)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	c := New()
	c.Hidden = 8
	c.Epochs = 200
	if err := c.Train(xtr, ytr, 2); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c.Predict, xte, yte); acc < 0.9 {
		t.Fatalf("XOR accuracy %v, want >= 0.9", acc)
	}
}

func TestMLPMulticlass(t *testing.T) {
	x, y := mltest.ThreeBlobs(3, 150)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	c := New()
	if err := c.Train(xtr, ytr, 3); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c.Predict, xte, yte); acc < 0.85 {
		t.Fatalf("3-class accuracy %v, want >= 0.85", acc)
	}
}

func TestMLPProbaAndTopology(t *testing.T) {
	x, y := mltest.ThreeBlobs(4, 80)
	c := New()
	if err := c.Train(x, y, 3); err != nil {
		t.Fatal(err)
	}
	p := c.Proba(x[0])
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	in, hid, out := c.Topology()
	if in != 4 || out != 3 {
		t.Fatalf("topology %d-%d-%d", in, hid, out)
	}
	// WEKA default 'a': (4+3)/2 = 3.
	if hid != 3 {
		t.Fatalf("default hidden %d, want 3", hid)
	}
}

func TestMLPScaleInvariance(t *testing.T) {
	x, y := mltest.TwoBlobs(5, 150)
	for i := range x {
		x[i][0] *= 1e6
		x[i][1] *= 1e4
	}
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	c := New()
	if err := c.Train(xtr, ytr, 2); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c.Predict, xte, yte); acc < 0.95 {
		t.Fatalf("accuracy %v on HPC-scale features", acc)
	}
}

func TestMLPDeterministicWithSeed(t *testing.T) {
	x, y := mltest.TwoBlobs(6, 80)
	a, b := New(), New()
	a.Seed, b.Seed = 3, 3
	a.Epochs, b.Epochs = 20, 20
	if err := a.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if a.Predict(x[i]) != b.Predict(x[i]) {
			t.Fatal("same seed, different predictions")
		}
	}
}

func TestMLPPanicsUntrained(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic before Train")
		}
	}()
	New().Predict([]float64{1, 2})
}

func TestMLPRejectsBadInput(t *testing.T) {
	if err := New().Train(nil, nil, 2); err == nil {
		t.Fatal("accepted empty training set")
	}
}

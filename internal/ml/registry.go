package ml

import (
	"fmt"
	"sort"
	"sync"
)

// Factory builds a fresh, untrained classifier with its default
// hyperparameters. seed makes stochastic learners reproducible; factories
// must derive every random choice from it.
type Factory func(seed uint64) Classifier

// Spec describes one registered classifier: its identity, which studies
// it participates in, and how to construct it. Adding a model to the
// system is one Register call with a filled Spec — the CLI's `train`,
// `emit` and `list` commands and the figure runners all resolve
// classifiers through the registry.
type Spec struct {
	// Name is the canonical WEKA-style identifier ("J48", "MLP").
	Name string
	// Label is the display name used by the multiclass figures when it
	// differs from Name (the paper labels Logistic "MLR"). Empty = Name.
	Label string
	// Description is a one-line summary for `hpcmal list`.
	Description string
	// Binary marks membership in the paper's binary study (Figure 13).
	Binary bool
	// Multiclass marks membership in the 6-class study (Figures 17-18).
	Multiclass bool
	// New constructs the classifier. Required.
	New Factory
}

// DisplayLabel returns Label, falling back to Name.
func (s Spec) DisplayLabel() string {
	if s.Label != "" {
		return s.Label
	}
	return s.Name
}

// Registry maps classifier names to their Specs, preserving registration
// order (the order the paper's figures present the models). All methods
// are safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	order []string
	specs map[string]Spec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{specs: map[string]Spec{}}
}

// Register adds a spec. It fails on duplicate names, empty names, and nil
// factories, so wiring mistakes surface at startup rather than mid-run.
func (r *Registry) Register(s Spec) error {
	if s.Name == "" {
		return fmt.Errorf("ml: registry spec with empty name")
	}
	if s.New == nil {
		return fmt.Errorf("ml: registry spec %q has no factory", s.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.specs[s.Name]; dup {
		return fmt.Errorf("ml: classifier %q registered twice", s.Name)
	}
	r.specs[s.Name] = s
	r.order = append(r.order, s.Name)
	return nil
}

// MustRegister is Register that panics on error; intended for package
// init-time wiring where a failure is a programming bug.
func (r *Registry) MustRegister(s Spec) {
	if err := r.Register(s); err != nil {
		panic(err)
	}
}

// Lookup returns the spec for name.
func (r *Registry) Lookup(name string) (Spec, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.specs[name]
	return s, ok
}

// New builds a fresh classifier by name.
func (r *Registry) New(name string, seed uint64) (Classifier, error) {
	s, ok := r.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("ml: unknown classifier %q (have %v)", name, r.Names())
	}
	return s.New(seed), nil
}

// Names lists every registered name in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string{}, r.order...)
}

// NamesWhere lists the registered names whose spec satisfies pred, in
// registration order.
func (r *Registry) NamesWhere(pred func(Spec) bool) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for _, n := range r.order {
		if pred(r.specs[n]) {
			out = append(out, n)
		}
	}
	return out
}

// SortedNames lists every registered name alphabetically (for stable
// diagnostics independent of registration order).
func (r *Registry) SortedNames() []string {
	names := r.Names()
	sort.Strings(names)
	return names
}

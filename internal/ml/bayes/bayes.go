// Package bayes implements Gaussian Naive Bayes (WEKA's NaiveBayes with
// numeric attributes): class-conditional independent normal densities with
// Laplace-smoothed priors.
package bayes

import (
	"math"

	"repro/internal/ml"
)

// NaiveBayes is a Gaussian naive Bayes classifier.
type NaiveBayes struct {
	// LogTransform applies sign(x)*log1p(|x|) to every feature before
	// fitting/scoring. Raw HPC counts are heavy-tailed, which breaks the
	// per-class Gaussian assumption badly; the transform is the standard
	// count-data remedy (WEKA users reach for discretization instead).
	LogTransform bool

	numClasses int
	dim        int
	priors     []float64   // log priors
	means      [][]float64 // [class][attr]
	vars       [][]float64 // [class][attr], floored
	trained    bool
}

// New returns an untrained NaiveBayes.
func New() *NaiveBayes { return &NaiveBayes{} }

// Name implements ml.Classifier.
func (nb *NaiveBayes) Name() string { return "NaiveBayes" }

// transform applies the optional log1p mapping to one value.
func (nb *NaiveBayes) transform(v float64) float64 {
	if !nb.LogTransform {
		return v
	}
	if v < 0 {
		return -math.Log1p(-v)
	}
	return math.Log1p(v)
}

// Train implements ml.Classifier.
func (nb *NaiveBayes) Train(x [][]float64, y []int, numClasses int) error {
	dim, err := ml.CheckTrainingSet(x, y, numClasses)
	if err != nil {
		return err
	}
	if nb.LogTransform {
		tx := make([][]float64, len(x))
		for i, row := range x {
			tr := make([]float64, len(row))
			for j, v := range row {
				tr[j] = nb.transform(v)
			}
			tx[i] = tr
		}
		x = tx
	}
	nb.numClasses = numClasses
	nb.dim = dim
	nb.priors = make([]float64, numClasses)
	nb.means = make([][]float64, numClasses)
	nb.vars = make([][]float64, numClasses)
	counts := make([]int, numClasses)
	for c := 0; c < numClasses; c++ {
		nb.means[c] = make([]float64, dim)
		nb.vars[c] = make([]float64, dim)
	}
	for i, row := range x {
		c := y[i]
		counts[c]++
		for j, v := range row {
			nb.means[c][j] += v
		}
	}
	for c := 0; c < numClasses; c++ {
		if counts[c] > 0 {
			for j := range nb.means[c] {
				nb.means[c][j] /= float64(counts[c])
			}
		}
	}
	for i, row := range x {
		c := y[i]
		for j, v := range row {
			d := v - nb.means[c][j]
			nb.vars[c][j] += d * d
		}
	}
	// Global variance floor keeps degenerate (constant) attributes from
	// producing infinite densities; WEKA uses a similar precision floor.
	var globalVar float64
	for c := 0; c < numClasses; c++ {
		denom := float64(counts[c] - 1)
		if denom < 1 {
			denom = 1
		}
		for j := range nb.vars[c] {
			nb.vars[c][j] /= denom
			globalVar += nb.vars[c][j]
		}
	}
	floor := 1e-9 * (globalVar/float64(numClasses*dim) + 1)
	for c := 0; c < numClasses; c++ {
		for j := range nb.vars[c] {
			if nb.vars[c][j] < floor {
				nb.vars[c][j] = floor
			}
		}
	}
	// Laplace-smoothed log priors.
	n := float64(len(y))
	for c := 0; c < numClasses; c++ {
		nb.priors[c] = math.Log((float64(counts[c]) + 1) / (n + float64(numClasses)))
	}
	nb.trained = true
	return nil
}

// logJoint returns the unnormalized log posterior for each class.
func (nb *NaiveBayes) logJoint(features []float64) []float64 {
	scores := make([]float64, nb.numClasses)
	for c := 0; c < nb.numClasses; c++ {
		s := nb.priors[c]
		for j, raw := range features {
			v := nb.transform(raw)
			mu, va := nb.means[c][j], nb.vars[c][j]
			d := v - mu
			s += -0.5*math.Log(2*math.Pi*va) - d*d/(2*va)
		}
		scores[c] = s
	}
	return scores
}

// Predict implements ml.Classifier.
func (nb *NaiveBayes) Predict(features []float64) int {
	if !nb.trained {
		panic(ml.ErrNotTrained)
	}
	return ml.ArgMax(nb.logJoint(features))
}

// Proba implements ml.ProbClassifier via softmax over log joints.
func (nb *NaiveBayes) Proba(features []float64) []float64 {
	if !nb.trained {
		panic(ml.ErrNotTrained)
	}
	scores := nb.logJoint(features)
	maxS := scores[ml.ArgMax(scores)]
	sum := 0.0
	for i, s := range scores {
		scores[i] = math.Exp(s - maxS)
		sum += scores[i]
	}
	for i := range scores {
		scores[i] /= sum
	}
	return scores
}

// Dim implements ml.Model.
func (nb *NaiveBayes) Dim() int {
	if !nb.trained {
		panic(ml.ErrNotTrained)
	}
	return nb.dim
}

// NumClasses implements ml.Model.
func (nb *NaiveBayes) NumClasses() int {
	if !nb.trained {
		panic(ml.ErrNotTrained)
	}
	return nb.numClasses
}

// Params exposes the fitted model for compilation: log priors and the
// per-class per-attribute Gaussian means and (floored) variances. The
// returned slices are the live model; callers must not mutate them.
func (nb *NaiveBayes) Params() (logPriors []float64, means, vars [][]float64) {
	if !nb.trained {
		panic(ml.ErrNotTrained)
	}
	return nb.priors, nb.means, nb.vars
}

package bayes

import (
	"math"
	"testing"

	"repro/internal/ml/mltest"
	"repro/internal/rng"
)

func TestNBSeparable(t *testing.T) {
	x, y := mltest.TwoBlobs(1, 200)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	c := New()
	if err := c.Train(xtr, ytr, 2); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c.Predict, xte, yte); acc < 0.97 {
		t.Fatalf("accuracy %v, want >= 0.97", acc)
	}
}

func TestNBMulticlass(t *testing.T) {
	x, y := mltest.ThreeBlobs(2, 150)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	c := New()
	if err := c.Train(xtr, ytr, 3); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c.Predict, xte, yte); acc < 0.85 {
		t.Fatalf("3-class accuracy %v, want >= 0.85", acc)
	}
}

func TestNBProbaSumsToOne(t *testing.T) {
	x, y := mltest.ThreeBlobs(3, 100)
	c := New()
	if err := c.Train(x, y, 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p := c.Proba(x[i])
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("probability %v out of range", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v", sum)
		}
		// Predict must agree with argmax of Proba.
		best := 0
		for k := range p {
			if p[k] > p[best] {
				best = k
			}
		}
		if c.Predict(x[i]) != best {
			t.Fatal("Predict disagrees with Proba argmax")
		}
	}
}

func TestNBConstantAttribute(t *testing.T) {
	// A zero-variance attribute must not produce NaN/Inf.
	x := [][]float64{{1, 5}, {2, 5}, {10, 5}, {11, 5}}
	y := []int{0, 0, 1, 1}
	c := New()
	if err := c.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	p := c.Proba([]float64{1.5, 5})
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("degenerate attribute produced %v", p)
		}
	}
	if c.Predict([]float64{1.5, 5}) != 0 {
		t.Fatal("misclassified near-cluster point")
	}
}

func TestNBMissingClassInTrain(t *testing.T) {
	// numClasses=3 but only classes 0,1 present: class 2 must get a small
	// prior, not break.
	x := [][]float64{{0}, {1}, {10}, {11}}
	y := []int{0, 0, 1, 1}
	c := New()
	if err := c.Train(x, y, 3); err != nil {
		t.Fatal(err)
	}
	p := c.Proba([]float64{0.5})
	if p[2] >= p[0] {
		t.Fatalf("absent class got probability %v >= present class %v", p[2], p[0])
	}
}

func TestNBPanicsUntrained(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic before Train")
		}
	}()
	New().Predict([]float64{1})
}

func TestNBRejectsBadInput(t *testing.T) {
	if err := New().Train([][]float64{{1}}, []int{0}, 1); err == nil {
		t.Fatal("accepted numClasses 1")
	}
}

func TestNBLogTransformOnHeavyTails(t *testing.T) {
	// Lognormal-ish count data: class 0 around exp(2), class 1 around
	// exp(4), both with multiplicative noise. Plain Gaussian NB struggles
	// with the asymmetric spread; the log transform restores normality.
	src := rng.New(42)
	var x [][]float64
	var y []int
	for i := 0; i < 400; i++ {
		x = append(x, []float64{src.LogNormal(2, 0.5), src.LogNormal(5, 0.4)})
		y = append(y, 0)
		x = append(x, []float64{src.LogNormal(4, 0.5), src.LogNormal(3, 0.4)})
		y = append(y, 1)
	}
	plain := New()
	if err := plain.Train(x[:600], y[:600], 2); err != nil {
		t.Fatal(err)
	}
	logged := New()
	logged.LogTransform = true
	if err := logged.Train(x[:600], y[:600], 2); err != nil {
		t.Fatal(err)
	}
	accOf := func(nb *NaiveBayes) float64 {
		correct := 0
		for i := 600; i < len(x); i++ {
			if nb.Predict(x[i]) == y[i] {
				correct++
			}
		}
		return float64(correct) / float64(len(x)-600)
	}
	pAcc, lAcc := accOf(plain), accOf(logged)
	if lAcc < pAcc-0.02 {
		t.Fatalf("log transform hurt: plain %v vs logged %v", pAcc, lAcc)
	}
	if lAcc < 0.95 {
		t.Fatalf("logged NB accuracy %v on separable lognormal data", lAcc)
	}
	// Negative inputs are mapped symmetrically, not dropped.
	if v := logged.transform(-(math.E - 1)); math.Abs(v+1) > 1e-12 {
		t.Fatalf("transform(-(e-1)) = %v, want -1", v)
	}
}

package tree

import (
	"math"
	"testing"

	"repro/internal/ml/mltest"
)

func TestJ48Separable(t *testing.T) {
	x, y := mltest.TwoBlobs(1, 200)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	c := NewJ48()
	if err := c.Train(xtr, ytr, 2); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c.Predict, xte, yte); acc < 0.95 {
		t.Fatalf("accuracy %v, want >= 0.95", acc)
	}
}

func TestJ48SolvesXOR(t *testing.T) {
	// Axis-aligned splits handle XOR easily.
	x, y := mltest.XOR(2, 150)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	c := NewJ48()
	if err := c.Train(xtr, ytr, 2); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c.Predict, xte, yte); acc < 0.9 {
		t.Fatalf("XOR accuracy %v, want >= 0.9", acc)
	}
}

func TestJ48Multiclass(t *testing.T) {
	x, y := mltest.ThreeBlobs(3, 150)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	c := NewJ48()
	if err := c.Train(xtr, ytr, 3); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c.Predict, xte, yte); acc < 0.85 {
		t.Fatalf("3-class accuracy %v, want >= 0.85", acc)
	}
}

func TestJ48PruningShrinksTree(t *testing.T) {
	// Noisy labels: an unpruned tree overfits to many nodes; pessimistic
	// pruning must cut it down relative to a CF≈0.5 (barely pruned) tree.
	x, y := mltest.Blobs(4, [][]float64{{0, 0}, {1.2, 1.2}}, 300, 1.2)
	loose := &J48{MinLeaf: 2, CF: 0.5}
	tight := &J48{MinLeaf: 2, CF: 0.01}
	if err := loose.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	if err := tight.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	if tight.Size() > loose.Size() {
		t.Fatalf("CF=0.01 tree (%d nodes) larger than CF=0.5 tree (%d nodes)",
			tight.Size(), loose.Size())
	}
}

func TestJ48StructureAccessors(t *testing.T) {
	x, y := mltest.ThreeBlobs(5, 100)
	c := NewJ48()
	if err := c.Train(x, y, 3); err != nil {
		t.Fatal(err)
	}
	if c.Size() < 3 {
		t.Fatalf("tree size %d implausibly small for 3 classes", c.Size())
	}
	if c.Leaves() < 2 {
		t.Fatalf("leaves %d", c.Leaves())
	}
	if c.Depth() < 1 {
		t.Fatalf("depth %d", c.Depth())
	}
	if c.Size() != 2*c.Leaves()-1 {
		t.Fatalf("binary tree invariant violated: size %d leaves %d", c.Size(), c.Leaves())
	}
}

func TestJ48PureLeaf(t *testing.T) {
	// Single-class data: one leaf, always that class.
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []int{1, 1, 1, 1}
	c := NewJ48()
	if err := c.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	if c.Size() != 1 || c.Predict([]float64{10}) != 1 {
		t.Fatal("pure data did not yield a single pure leaf")
	}
}

func TestREPTreeSeparable(t *testing.T) {
	x, y := mltest.TwoBlobs(1, 200)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	c := NewREPTree()
	if err := c.Train(xtr, ytr, 2); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c.Predict, xte, yte); acc < 0.95 {
		t.Fatalf("accuracy %v, want >= 0.95", acc)
	}
}

func TestREPTreeMulticlass(t *testing.T) {
	x, y := mltest.ThreeBlobs(2, 150)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	c := NewREPTree()
	if err := c.Train(xtr, ytr, 3); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c.Predict, xte, yte); acc < 0.8 {
		t.Fatalf("3-class accuracy %v, want >= 0.8", acc)
	}
}

func TestREPTreePruningOnNoise(t *testing.T) {
	// Near-pure label noise: reduced-error pruning must leave the tree
	// substantially smaller than the unpruned tree grown on the same data.
	x, y := mltest.Blobs(6, [][]float64{{0, 0}, {0.1, 0.1}}, 200, 2.0)
	c := NewREPTree()
	if err := c.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	rows := make([]int, len(x))
	for i := range rows {
		rows[i] = i
	}
	unpruned := grow(x, y, rows, 2, 2, 0, 0, false, nil)
	if c.Size() >= unpruned.size()/2 {
		t.Fatalf("pruned tree %d nodes vs unpruned %d; pruning ineffective",
			c.Size(), unpruned.size())
	}
}

func TestREPTreeDeterministicWithSeed(t *testing.T) {
	x, y := mltest.ThreeBlobs(7, 100)
	a, b := NewREPTree(), NewREPTree()
	a.Seed, b.Seed = 5, 5
	if err := a.Train(x, y, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.Train(x, y, 3); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if a.Predict(x[i]) != b.Predict(x[i]) {
			t.Fatal("same seed, different trees")
		}
	}
}

func TestMaxDepthRespected(t *testing.T) {
	x, y := mltest.ThreeBlobs(8, 200)
	c := &J48{MinLeaf: 2, CF: 0.25, MaxDepth: 2}
	if err := c.Train(x, y, 3); err != nil {
		t.Fatal(err)
	}
	if c.Depth() > 2 {
		t.Fatalf("depth %d exceeds MaxDepth 2", c.Depth())
	}
}

func TestAddErrs(t *testing.T) {
	// Zero observed errors still predict some expected errors.
	if v := addErrs(100, 0, 0.25); v <= 0 || v >= 100 {
		t.Fatalf("addErrs(100,0) = %v", v)
	}
	// More confidence (smaller CF) means a larger error estimate.
	if addErrs(100, 5, 0.1) <= addErrs(100, 5, 0.4) {
		t.Fatal("addErrs not monotone in CF")
	}
	// Extreme e: bounded by n-e.
	if v := addErrs(10, 10, 0.25); v != 0 {
		t.Fatalf("addErrs(10,10) = %v, want 0", v)
	}
}

func TestNormalInverse(t *testing.T) {
	// Known quantiles.
	cases := []struct{ p, want float64 }{
		{0.5, 0}, {0.975, 1.959964}, {0.025, -1.959964}, {0.84134, 0.99998},
	}
	for _, tc := range cases {
		if got := normalInverse(tc.p); math.Abs(got-tc.want) > 1e-3 {
			t.Fatalf("normalInverse(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestTreesPanicUntrained(t *testing.T) {
	for _, f := range []func(){
		func() { NewJ48().Predict([]float64{1}) },
		func() { NewREPTree().Predict([]float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic before Train")
				}
			}()
			f()
		}()
	}
}

func TestTreesRejectBadInput(t *testing.T) {
	if err := NewJ48().Train(nil, nil, 2); err == nil {
		t.Fatal("J48 accepted empty set")
	}
	if err := NewREPTree().Train([][]float64{{1}}, []int{0}, 1); err == nil {
		t.Fatal("REPTree accepted numClasses 1")
	}
}

func TestFeatureImportance(t *testing.T) {
	// Attribute 1 carries all the signal; attribute 0 is noise.
	x, y := mltest.Blobs(11, [][]float64{{0, 0}, {0, 8}}, 150, 0.5)
	c := NewJ48()
	if err := c.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	imp := c.FeatureImportance(2)
	if imp[1] <= imp[0] {
		t.Fatalf("importance %v does not favor the informative attribute", imp)
	}
	sum := imp[0] + imp[1]
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("importances sum to %v", sum)
	}
	// Pure data: single leaf, all-zero importance.
	pure := NewJ48()
	if err := pure.Train([][]float64{{1}, {2}, {3}, {4}}, []int{1, 1, 1, 1}, 2); err != nil {
		t.Fatal(err)
	}
	pimp := pure.FeatureImportance(1)
	if pimp[0] != 0 {
		t.Fatalf("single-leaf importance %v", pimp)
	}
}

func TestExportRoundTrip(t *testing.T) {
	x, y := mltest.ThreeBlobs(12, 150)
	for _, m := range []interface {
		Train([][]float64, []int, int) error
		Predict([]float64) int
		Export() []ExportedNode
	}{NewJ48(), NewREPTree()} {
		if err := m.Train(x, y, 3); err != nil {
			t.Fatal(err)
		}
		nodes := m.Export()
		if len(nodes) == 0 {
			t.Fatal("empty export")
		}
		// Re-implement prediction over the exported form and compare.
		predict := func(row []float64) int {
			i := 0
			for !nodes[i].Leaf {
				if row[nodes[i].Attr] <= nodes[i].Thr {
					i = nodes[i].Left
				} else {
					i = nodes[i].Right
				}
			}
			return nodes[i].Label
		}
		for _, row := range x[:50] {
			if predict(row) != m.Predict(row) {
				t.Fatal("exported tree disagrees with model")
			}
		}
	}
}

func TestREPTreeAccessors(t *testing.T) {
	x, y := mltest.ThreeBlobs(13, 150)
	r := NewREPTree()
	if err := r.Train(x, y, 3); err != nil {
		t.Fatal(err)
	}
	if r.Name() != "REPTree" {
		t.Fatal("name wrong")
	}
	if r.Size() != 2*r.Leaves()-1 {
		t.Fatalf("binary invariant: size %d leaves %d", r.Size(), r.Leaves())
	}
	if r.Depth() < 1 {
		t.Fatalf("depth %d", r.Depth())
	}
	j := NewJ48()
	if j.Name() != "J48" {
		t.Fatal("J48 name wrong")
	}
}

func TestRandomTreeInPackage(t *testing.T) {
	x, y := mltest.ThreeBlobs(14, 200)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	rt := NewRandomTree()
	if rt.Name() != "RandomTree" {
		t.Fatal("name wrong")
	}
	if err := rt.Train(xtr, ytr, 3); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(rt.Predict, xte, yte); acc < 0.75 {
		t.Fatalf("random tree accuracy %v", acc)
	}
	if rt.Size() < 3 {
		t.Fatalf("size %d", rt.Size())
	}
	// K clamps to dim.
	big := &RandomTree{K: 99, MinLeaf: 1, Seed: 2}
	if err := big.Train(xtr, ytr, 3); err != nil {
		t.Fatal(err)
	}
	// Max depth respected.
	shallow := &RandomTree{MaxDepth: 2, MinLeaf: 1, Seed: 3}
	if err := shallow.Train(xtr, ytr, 3); err != nil {
		t.Fatal(err)
	}
	// Untrained panics.
	defer func() {
		if recover() == nil {
			t.Fatal("no panic before Train")
		}
	}()
	NewRandomTree().Predict([]float64{1})
}

func TestREPTreeFeatureImportance(t *testing.T) {
	x, y := mltest.Blobs(15, [][]float64{{0, 0}, {0, 8}}, 150, 0.5)
	r := NewREPTree()
	if err := r.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	imp := r.FeatureImportance(2)
	if imp[1] <= imp[0] {
		t.Fatalf("REPTree importance %v", imp)
	}
}

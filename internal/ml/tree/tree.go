// Package tree implements the paper's decision-tree classifiers: J48
// (C4.5 with gain-ratio splits and pessimistic-error pruning) and REPTree
// (information-gain tree with reduced-error pruning on a held-out fold),
// both over numeric attributes with binary threshold splits.
package tree

import (
	"math"
	"sort"

	"repro/internal/ml"
	"repro/internal/rng"
)

// node is one tree node. Leaves carry a label; internal nodes a binary
// threshold test (x[attr] <= thr goes left).
type node struct {
	leaf   bool
	label  int
	counts []int // training class distribution at this node
	attr   int
	thr    float64
	left   *node
	right  *node
}

func (n *node) size() int {
	if n == nil {
		return 0
	}
	return 1 + n.left.size() + n.right.size()
}

func (n *node) leaves() int {
	if n == nil {
		return 0
	}
	if n.leaf {
		return 1
	}
	return n.left.leaves() + n.right.leaves()
}

func (n *node) depth() int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := n.left.depth(), n.right.depth()
	if l > r {
		return 1 + l
	}
	return 1 + r
}

func (n *node) predict(x []float64) int {
	for !n.leaf {
		if x[n.attr] <= n.thr {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label
}

func entropy(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c > 0 {
			p := float64(c) / float64(total)
			h -= p * math.Log2(p)
		}
	}
	return h
}

// split describes the best threshold found for one attribute.
type split struct {
	attr      int
	thr       float64
	gain      float64
	gainRatio float64
	ok        bool
}

// bestSplit scans all attributes for the best binary threshold split of
// the rows (indices into x). useGainRatio selects C4.5's criterion;
// otherwise plain information gain (REPTree).
func bestSplit(x [][]float64, y []int, rows []int, numClasses, minLeaf int, useGainRatio bool, attrs []int) split {
	total := len(rows)
	parentCounts := make([]int, numClasses)
	for _, r := range rows {
		parentCounts[y[r]]++
	}
	parentH := entropy(parentCounts, total)

	best := split{}
	type pair struct {
		v     float64
		label int
	}
	pairs := make([]pair, total)
	leftCounts := make([]int, numClasses)

	if attrs == nil {
		attrs = make([]int, len(x[0]))
		for i := range attrs {
			attrs[i] = i
		}
	}
	// C4.5 requires the average gain over candidate splits to filter weak
	// attributes; we track gains to apply that on the gain-ratio path.
	var candidates []split
	for _, a := range attrs {
		for i, r := range rows {
			pairs[i] = pair{x[r][a], y[r]}
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
		for c := range leftCounts {
			leftCounts[c] = 0
		}
		nLeft := 0
		bestAttr := split{}
		for i := 0; i < total-1; i++ {
			leftCounts[pairs[i].label]++
			nLeft++
			if pairs[i].v == pairs[i+1].v {
				continue
			}
			nRight := total - nLeft
			if nLeft < minLeaf || nRight < minLeaf {
				continue
			}
			rightCounts := make([]int, numClasses)
			for c := range rightCounts {
				rightCounts[c] = parentCounts[c] - leftCounts[c]
			}
			hl := entropy(leftCounts, nLeft)
			hr := entropy(rightCounts, nRight)
			pl := float64(nLeft) / float64(total)
			gain := parentH - pl*hl - (1-pl)*hr
			if gain <= bestAttr.gain {
				continue
			}
			thr := (pairs[i].v + pairs[i+1].v) / 2
			si := -pl*math.Log2(pl) - (1-pl)*math.Log2(1-pl)
			gr := gain
			if useGainRatio && si > 1e-12 {
				gr = gain / si
			}
			bestAttr = split{attr: a, thr: thr, gain: gain, gainRatio: gr, ok: true}
		}
		if bestAttr.ok {
			candidates = append(candidates, bestAttr)
		}
	}
	if len(candidates) == 0 {
		return best
	}
	if !useGainRatio {
		for _, c := range candidates {
			if !best.ok || c.gain > best.gain {
				best = c
			}
		}
		return best
	}
	// C4.5: among attributes with at least average gain, pick the best
	// gain ratio.
	avgGain := 0.0
	for _, c := range candidates {
		avgGain += c.gain
	}
	avgGain /= float64(len(candidates))
	for _, c := range candidates {
		if c.gain+1e-12 >= avgGain && (!best.ok || c.gainRatio > best.gainRatio) {
			best = c
		}
	}
	if !best.ok { // numeric edge: fall back to best gain
		for _, c := range candidates {
			if !best.ok || c.gain > best.gain {
				best = c
			}
		}
	}
	return best
}

// grow builds a tree over rows recursively. attrSampler, when non-nil,
// returns the candidate attribute subset for each split (random-subspace
// trees); nil considers every attribute.
func grow(x [][]float64, y []int, rows []int, numClasses, minLeaf, depth, maxDepth int, useGainRatio bool, attrSampler func() []int) *node {
	counts := make([]int, numClasses)
	for _, r := range rows {
		counts[y[r]]++
	}
	label := ml.ArgMaxInt(counts)
	n := &node{leaf: true, label: label, counts: counts}
	if len(rows) < 2*minLeaf || counts[label] == len(rows) {
		return n
	}
	if maxDepth > 0 && depth >= maxDepth {
		return n
	}
	var attrs []int
	if attrSampler != nil {
		attrs = attrSampler()
	}
	sp := bestSplit(x, y, rows, numClasses, minLeaf, useGainRatio, attrs)
	if !sp.ok || sp.gain < 1e-9 {
		return n
	}
	var leftRows, rightRows []int
	for _, r := range rows {
		if x[r][sp.attr] <= sp.thr {
			leftRows = append(leftRows, r)
		} else {
			rightRows = append(rightRows, r)
		}
	}
	if len(leftRows) == 0 || len(rightRows) == 0 {
		return n
	}
	n.leaf = false
	n.attr = sp.attr
	n.thr = sp.thr
	n.left = grow(x, y, leftRows, numClasses, minLeaf, depth+1, maxDepth, useGainRatio, attrSampler)
	n.right = grow(x, y, rightRows, numClasses, minLeaf, depth+1, maxDepth, useGainRatio, attrSampler)
	return n
}

// --- J48 (C4.5) ---

// J48 is the C4.5 decision tree (WEKA's J48): gain-ratio splits,
// pessimistic-error pruning with confidence factor CF.
type J48 struct {
	// MinLeaf is the minimum instances per leaf (WEKA -M, default 2).
	MinLeaf int
	// CF is the pruning confidence factor (WEKA -C, default 0.25).
	CF float64
	// MaxDepth bounds tree depth (0 = unlimited).
	MaxDepth int

	root       *node
	dim        int
	numClasses int
	trained    bool
}

// NewJ48 returns a J48 with WEKA's default parameters.
func NewJ48() *J48 { return &J48{MinLeaf: 2, CF: 0.25} }

// Name implements ml.Classifier.
func (j *J48) Name() string { return "J48" }

// Train implements ml.Classifier.
func (j *J48) Train(x [][]float64, y []int, numClasses int) error {
	dim, err := ml.CheckTrainingSet(x, y, numClasses)
	if err != nil {
		return err
	}
	j.dim, j.numClasses = dim, numClasses
	if j.MinLeaf <= 0 {
		j.MinLeaf = 2
	}
	if j.CF <= 0 || j.CF > 0.5 {
		j.CF = 0.25
	}
	rows := make([]int, len(x))
	for i := range rows {
		rows[i] = i
	}
	j.root = grow(x, y, rows, numClasses, j.MinLeaf, 0, j.MaxDepth, true, nil)
	j.prune(j.root)
	j.trained = true
	return nil
}

// pessimisticErrors returns the C4.5 upper-bound error estimate for a node
// with n instances and e misclassifications.
func (j *J48) pessimisticErrors(n, e int) float64 {
	return float64(e) + addErrs(float64(n), float64(e), j.CF)
}

// prune applies subtree-replacement pruning bottom-up.
func (j *J48) prune(n *node) {
	if n == nil || n.leaf {
		return
	}
	j.prune(n.left)
	j.prune(n.right)
	total := 0
	for _, c := range n.counts {
		total += c
	}
	leafErr := j.pessimisticErrors(total, total-n.counts[ml.ArgMaxInt(n.counts)])
	subErr := j.subtreeErrors(n)
	if leafErr <= subErr+0.1 {
		n.leaf = true
		n.label = ml.ArgMaxInt(n.counts)
		n.left, n.right = nil, nil
	}
}

func (j *J48) subtreeErrors(n *node) float64 {
	if n.leaf {
		total := 0
		for _, c := range n.counts {
			total += c
		}
		return j.pessimisticErrors(total, total-n.counts[n.label])
	}
	return j.subtreeErrors(n.left) + j.subtreeErrors(n.right)
}

// addErrs is C4.5's extra-error estimate: the number of additional errors
// expected at confidence CF for N instances with e observed errors
// (Quinlan's normal-approximation inverse).
func addErrs(n, e, cf float64) float64 {
	if e < 1e-9 {
		// Special case: no observed errors.
		return n * (1 - math.Pow(cf, 1/n))
	}
	if e+0.5 >= n {
		return math.Max(n-e, 0)
	}
	z := normalInverse(1 - cf)
	f := (e + 0.5) / n
	r := (f + z*z/(2*n) + z*math.Sqrt(f/n-f*f/n+z*z/(4*n*n))) / (1 + z*z/n)
	return r*n - e
}

// normalInverse approximates the standard normal quantile function
// (Acklam's rational approximation, |eps| < 1.15e-9).
func normalInverse(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("tree: normalInverse domain")
	}
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// Predict implements ml.Classifier.
func (j *J48) Predict(features []float64) int {
	if !j.trained {
		panic(ml.ErrNotTrained)
	}
	return j.root.predict(features)
}

// Size returns the number of nodes in the pruned tree.
func (j *J48) Size() int {
	if !j.trained {
		panic(ml.ErrNotTrained)
	}
	return j.root.size()
}

// Leaves returns the number of leaves.
func (j *J48) Leaves() int {
	if !j.trained {
		panic(ml.ErrNotTrained)
	}
	return j.root.leaves()
}

// Depth returns the depth of the pruned tree (0 = a single leaf); the
// hardware model derives pipeline latency from it.
func (j *J48) Depth() int {
	if !j.trained {
		panic(ml.ErrNotTrained)
	}
	return j.root.depth()
}

// Dim implements ml.Model.
func (j *J48) Dim() int {
	if !j.trained {
		panic(ml.ErrNotTrained)
	}
	return j.dim
}

// NumClasses implements ml.Model.
func (j *J48) NumClasses() int {
	if !j.trained {
		panic(ml.ErrNotTrained)
	}
	return j.numClasses
}

// --- REPTree ---

// REPTree is WEKA's fast tree learner: information-gain splits and
// reduced-error pruning against an internal held-out fold.
type REPTree struct {
	// MinLeaf is the minimum instances per leaf (default 2).
	MinLeaf int
	// PruneFrac is the fraction of training data held out for pruning
	// (WEKA uses one of 3 folds; default 1/3).
	PruneFrac float64
	// MaxDepth bounds depth (0 = unlimited; WEKA -L -1).
	MaxDepth int
	// Seed controls the prune-set draw.
	Seed uint64

	root       *node
	dim        int
	numClasses int
	trained    bool
}

// NewREPTree returns a REPTree with WEKA-like defaults.
func NewREPTree() *REPTree { return &REPTree{MinLeaf: 2, PruneFrac: 1.0 / 3, Seed: 1} }

// Name implements ml.Classifier.
func (r *REPTree) Name() string { return "REPTree" }

// Train implements ml.Classifier.
func (r *REPTree) Train(x [][]float64, y []int, numClasses int) error {
	dim, err := ml.CheckTrainingSet(x, y, numClasses)
	if err != nil {
		return err
	}
	r.dim, r.numClasses = dim, numClasses
	if r.MinLeaf <= 0 {
		r.MinLeaf = 2
	}
	if r.PruneFrac <= 0 || r.PruneFrac >= 1 {
		r.PruneFrac = 1.0 / 3
	}
	src := rng.New(r.Seed)
	perm := src.Perm(len(x))
	nPrune := int(float64(len(x)) * r.PruneFrac)
	if nPrune < 1 {
		nPrune = 1
	}
	if nPrune >= len(x) {
		nPrune = len(x) - 1
	}
	pruneRows := perm[:nPrune]
	growRows := perm[nPrune:]

	r.root = grow(x, y, growRows, numClasses, r.MinLeaf, 0, r.MaxDepth, false, nil)
	r.reducedErrorPrune(r.root, x, y, pruneRows)
	r.trained = true
	return nil
}

// reducedErrorPrune collapses subtrees whose held-out error is not better
// than a leaf's.
func (r *REPTree) reducedErrorPrune(n *node, x [][]float64, y []int, rows []int) {
	if n == nil || n.leaf {
		return
	}
	var leftRows, rightRows []int
	for _, row := range rows {
		if x[row][n.attr] <= n.thr {
			leftRows = append(leftRows, row)
		} else {
			rightRows = append(rightRows, row)
		}
	}
	r.reducedErrorPrune(n.left, x, y, leftRows)
	r.reducedErrorPrune(n.right, x, y, rightRows)

	subErr := 0
	for _, row := range rows {
		if n.predict(x[row]) != y[row] {
			subErr++
		}
	}
	leafLabel := ml.ArgMaxInt(n.counts)
	leafErr := 0
	for _, row := range rows {
		if y[row] != leafLabel {
			leafErr++
		}
	}
	if leafErr <= subErr {
		n.leaf = true
		n.label = leafLabel
		n.left, n.right = nil, nil
	}
}

// Predict implements ml.Classifier.
func (r *REPTree) Predict(features []float64) int {
	if !r.trained {
		panic(ml.ErrNotTrained)
	}
	return r.root.predict(features)
}

// Size returns the number of nodes in the pruned tree.
func (r *REPTree) Size() int {
	if !r.trained {
		panic(ml.ErrNotTrained)
	}
	return r.root.size()
}

// Depth returns the pruned tree depth.
func (r *REPTree) Depth() int {
	if !r.trained {
		panic(ml.ErrNotTrained)
	}
	return r.root.depth()
}

// Leaves returns the number of leaves.
func (r *REPTree) Leaves() int {
	if !r.trained {
		panic(ml.ErrNotTrained)
	}
	return r.root.leaves()
}

// Dim implements ml.Model.
func (r *REPTree) Dim() int {
	if !r.trained {
		panic(ml.ErrNotTrained)
	}
	return r.dim
}

// NumClasses implements ml.Model.
func (r *REPTree) NumClasses() int {
	if !r.trained {
		panic(ml.ErrNotTrained)
	}
	return r.numClasses
}

// ExportedNode is one node of a trained tree in export form. Leaf nodes
// carry Label; internal nodes carry the split and child indices into the
// exported slice.
type ExportedNode struct {
	Leaf        bool
	Label       int
	Attr        int
	Thr         float64
	Left, Right int
}

// export flattens a tree in preorder.
func export(root *node) []ExportedNode {
	var out []ExportedNode
	var walk func(n *node) int
	walk = func(n *node) int {
		idx := len(out)
		out = append(out, ExportedNode{})
		if n.leaf {
			out[idx] = ExportedNode{Leaf: true, Label: n.label}
			return idx
		}
		e := ExportedNode{Attr: n.attr, Thr: n.thr}
		e.Left = walk(n.left)
		e.Right = walk(n.right)
		out[idx] = e
		return idx
	}
	walk(root)
	return out
}

// Export returns the pruned tree in flattened preorder form (node 0 is
// the root) for hardware code generation.
func (j *J48) Export() []ExportedNode {
	if !j.trained {
		panic(ml.ErrNotTrained)
	}
	return export(j.root)
}

// Export returns the pruned tree in flattened preorder form (node 0 is
// the root) for hardware code generation.
func (r *REPTree) Export() []ExportedNode {
	if !r.trained {
		panic(ml.ErrNotTrained)
	}
	return export(r.root)
}

// --- RandomTree ---

// RandomTree is a base learner for random forests: an unpruned
// information-gain tree that considers only a random attribute subset at
// each split (Breiman's random subspace method).
type RandomTree struct {
	// K is the attribute-subset size per split; 0 means ceil(sqrt(dim)).
	K int
	// MinLeaf is the minimum instances per leaf (default 1, RF-style).
	MinLeaf int
	// MaxDepth bounds depth (0 = unlimited).
	MaxDepth int
	// Seed controls the per-split attribute draws.
	Seed uint64

	root    *node
	trained bool
}

// NewRandomTree returns a RandomTree with random-forest defaults.
func NewRandomTree() *RandomTree { return &RandomTree{MinLeaf: 1, Seed: 1} }

// Name implements ml.Classifier.
func (r *RandomTree) Name() string { return "RandomTree" }

// Train implements ml.Classifier.
func (r *RandomTree) Train(x [][]float64, y []int, numClasses int) error {
	dim, err := ml.CheckTrainingSet(x, y, numClasses)
	if err != nil {
		return err
	}
	if r.MinLeaf <= 0 {
		r.MinLeaf = 1
	}
	k := r.K
	if k <= 0 {
		k = int(math.Ceil(math.Sqrt(float64(dim))))
	}
	if k > dim {
		k = dim
	}
	src := rng.New(r.Seed)
	sampler := func() []int {
		perm := src.Perm(dim)
		return perm[:k]
	}
	rows := make([]int, len(x))
	for i := range rows {
		rows[i] = i
	}
	r.root = grow(x, y, rows, numClasses, r.MinLeaf, 0, r.MaxDepth, false, sampler)
	r.trained = true
	return nil
}

// Predict implements ml.Classifier.
func (r *RandomTree) Predict(features []float64) int {
	if !r.trained {
		panic(ml.ErrNotTrained)
	}
	return r.root.predict(features)
}

// Size returns the node count.
func (r *RandomTree) Size() int {
	if !r.trained {
		panic(ml.ErrNotTrained)
	}
	return r.root.size()
}

// featureImportance accumulates sample-weighted split counts per
// attribute.
func featureImportance(n *node, dim int, out []float64) {
	if n == nil || n.leaf {
		return
	}
	total := 0
	for _, c := range n.counts {
		total += c
	}
	if n.attr >= 0 && n.attr < dim {
		out[n.attr] += float64(total)
	}
	featureImportance(n.left, dim, out)
	featureImportance(n.right, dim, out)
}

// FeatureImportance returns per-attribute importances: the number of
// training instances routed through splits on each attribute, normalized
// to sum to 1 (0 everywhere for a single-leaf tree).
func (j *J48) FeatureImportance(dim int) []float64 {
	if !j.trained {
		panic(ml.ErrNotTrained)
	}
	return normalizeImportance(j.root, dim)
}

// FeatureImportance returns per-attribute importances (see J48).
func (r *REPTree) FeatureImportance(dim int) []float64 {
	if !r.trained {
		panic(ml.ErrNotTrained)
	}
	return normalizeImportance(r.root, dim)
}

func normalizeImportance(root *node, dim int) []float64 {
	out := make([]float64, dim)
	featureImportance(root, dim, out)
	sum := 0.0
	for _, v := range out {
		sum += v
	}
	if sum > 0 {
		for i := range out {
			out[i] /= sum
		}
	}
	return out
}

// Package rules implements a RIPPER-style rule learner (WEKA's JRip):
// classes are processed from rarest to most frequent; for each class an
// IREP loop grows rules condition-by-condition via FOIL information gain,
// prunes them on a held-out third, and stops when pruned-rule accuracy
// falls below chance. The most frequent class becomes the default rule.
//
// The paper highlights JRip as one of the best accuracy-per-area
// classifiers in hardware: its model is a short chain of threshold
// comparisons.
package rules

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/ml"
	"repro/internal/rng"
)

// Condition is one threshold literal in a rule: feature attr compared to
// thr with <= (OpLE) or > (OpGT).
type Condition struct {
	Attr int
	Op   byte // 'l' = <=, 'g' = >
	Thr  float64
}

// Matches reports whether the condition holds for x.
func (c Condition) Matches(x []float64) bool {
	if c.Op == 'l' {
		return x[c.Attr] <= c.Thr
	}
	return x[c.Attr] > c.Thr
}

// String renders the condition.
func (c Condition) String() string {
	op := "<="
	if c.Op == 'g' {
		op = ">"
	}
	return fmt.Sprintf("a%d %s %.4g", c.Attr, op, c.Thr)
}

// Rule is a conjunction of conditions implying a label.
type Rule struct {
	Conds []Condition
	Label int
}

// Matches reports whether every condition holds.
func (r *Rule) Matches(x []float64) bool {
	for _, c := range r.Conds {
		if !c.Matches(x) {
			return false
		}
	}
	return true
}

// String renders the rule WEKA-style.
func (r *Rule) String() string {
	if len(r.Conds) == 0 {
		return fmt.Sprintf("=> class %d", r.Label)
	}
	parts := make([]string, len(r.Conds))
	for i, c := range r.Conds {
		parts[i] = c.String()
	}
	return fmt.Sprintf("(%s) => class %d", strings.Join(parts, " and "), r.Label)
}

// JRip is the RIPPER rule-list classifier.
type JRip struct {
	// MaxRulesPerClass bounds the ruleset size per class (default 16).
	MaxRulesPerClass int
	// Candidates is the number of quantile thresholds evaluated per
	// attribute when growing a condition (default 16).
	Candidates int
	// Seed controls grow/prune splitting.
	Seed uint64

	rules        []Rule
	defaultLabel int
	dim          int
	numClasses   int
	trained      bool
}

// New returns a JRip with defaults.
func New() *JRip { return &JRip{MaxRulesPerClass: 16, Candidates: 16, Seed: 1} }

// Name implements ml.Classifier.
func (j *JRip) Name() string { return "JRip" }

// Train implements ml.Classifier.
func (j *JRip) Train(x [][]float64, y []int, numClasses int) error {
	dim, err := ml.CheckTrainingSet(x, y, numClasses)
	if err != nil {
		return err
	}
	j.dim, j.numClasses = dim, numClasses
	if j.MaxRulesPerClass <= 0 {
		j.MaxRulesPerClass = 16
	}
	if j.Candidates < 4 {
		j.Candidates = 16
	}

	// Order classes rarest first; the most frequent becomes the default.
	freq := make([]int, numClasses)
	for _, label := range y {
		freq[label]++
	}
	order := make([]int, numClasses)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return freq[order[a]] < freq[order[b]] })
	j.defaultLabel = order[numClasses-1]

	// Active instance pool; covered instances are removed as rules fire.
	active := make([]int, len(x))
	for i := range active {
		active[i] = i
	}
	src := rng.New(j.Seed)
	j.rules = nil

	for _, class := range order[:numClasses-1] {
		for nr := 0; nr < j.MaxRulesPerClass; nr++ {
			pos := 0
			for _, idx := range active {
				if y[idx] == class {
					pos++
				}
			}
			if pos == 0 {
				break
			}
			rule, ok := j.growPruneRule(x, y, active, class, src)
			if !ok {
				break
			}
			j.rules = append(j.rules, rule)
			// Remove covered instances (any class: rule list semantics).
			var remaining []int
			for _, idx := range active {
				if !rule.Matches(x[idx]) {
					remaining = append(remaining, idx)
				}
			}
			active = remaining
		}
	}
	j.trained = true
	return nil
}

// growPruneRule runs one IREP iteration for the target class over the
// active pool. Returns ok=false when no worthwhile rule can be built.
func (j *JRip) growPruneRule(x [][]float64, y []int, active []int, class int, src *rng.Source) (Rule, bool) {
	// 2/3 grow, 1/3 prune.
	pool := append([]int{}, active...)
	src.Shuffle(len(pool), func(i, k int) { pool[i], pool[k] = pool[k], pool[i] })
	nGrow := len(pool) * 2 / 3
	if nGrow < 1 {
		nGrow = len(pool)
	}
	growSet, pruneSet := pool[:nGrow], pool[nGrow:]

	rule := Rule{Label: class}
	covered := append([]int{}, growSet...)
	for len(rule.Conds) < 8 {
		pos, neg := countClass(y, covered, class)
		if neg == 0 || pos == 0 {
			break
		}
		cond, gain := j.bestCondition(x, y, covered, class)
		if gain <= 0 {
			break
		}
		rule.Conds = append(rule.Conds, cond)
		covered = filterMatches(x, covered, cond)
	}
	if len(rule.Conds) == 0 {
		return Rule{}, false
	}

	// Prune: drop a suffix of conditions to maximize (p-n)/(p+n) on the
	// prune set.
	bestLen, bestVal := len(rule.Conds), pruneValue(x, y, pruneSet, rule.Conds, class)
	for l := len(rule.Conds) - 1; l >= 1; l-- {
		v := pruneValue(x, y, pruneSet, rule.Conds[:l], class)
		if v >= bestVal {
			bestVal, bestLen = v, l
		}
	}
	rule.Conds = rule.Conds[:bestLen]

	// Accept only rules better than chance on the prune set (or on the
	// grow set when the prune set is empty/uninformative).
	if len(pruneSet) > 0 && bestVal < 0 {
		return Rule{}, false
	}
	if len(pruneSet) == 0 {
		p, n := ruleCover(x, y, growSet, rule.Conds, class)
		if p <= n {
			return Rule{}, false
		}
	}
	return rule, true
}

// bestCondition finds the literal with the highest FOIL gain over the
// covered grow-set rows.
func (j *JRip) bestCondition(x [][]float64, y []int, covered []int, class int) (Condition, float64) {
	p0, n0 := countClass(y, covered, class)
	base := math.Log2(float64(p0) / float64(p0+n0))
	dim := len(x[0])
	var best Condition
	bestGain := 0.0

	vals := make([]float64, 0, len(covered))
	for a := 0; a < dim; a++ {
		vals = vals[:0]
		for _, idx := range covered {
			vals = append(vals, x[idx][a])
		}
		sort.Float64s(vals)
		// Quantile candidate thresholds.
		for q := 1; q < j.Candidates; q++ {
			thr := vals[q*len(vals)/j.Candidates]
			for _, op := range []byte{'l', 'g'} {
				cond := Condition{Attr: a, Op: op, Thr: thr}
				p, n := 0, 0
				for _, idx := range covered {
					if cond.Matches(x[idx]) {
						if y[idx] == class {
							p++
						} else {
							n++
						}
					}
				}
				if p == 0 {
					continue
				}
				gain := float64(p) * (math.Log2(float64(p)/float64(p+n)) - base)
				if gain > bestGain {
					bestGain = gain
					best = cond
				}
			}
		}
	}
	return best, bestGain
}

func countClass(y []int, rows []int, class int) (pos, neg int) {
	for _, idx := range rows {
		if y[idx] == class {
			pos++
		} else {
			neg++
		}
	}
	return pos, neg
}

func filterMatches(x [][]float64, rows []int, c Condition) []int {
	var out []int
	for _, idx := range rows {
		if c.Matches(x[idx]) {
			out = append(out, idx)
		}
	}
	return out
}

func ruleCover(x [][]float64, y []int, rows []int, conds []Condition, class int) (p, n int) {
	r := Rule{Conds: conds, Label: class}
	for _, idx := range rows {
		if r.Matches(x[idx]) {
			if y[idx] == class {
				p++
			} else {
				n++
			}
		}
	}
	return p, n
}

// pruneValue is RIPPER's pruning metric (p-n)/(p+n); rules covering
// nothing score -1 (worse than chance) so they get pruned away.
func pruneValue(x [][]float64, y []int, rows []int, conds []Condition, class int) float64 {
	p, n := ruleCover(x, y, rows, conds, class)
	if p+n == 0 {
		return -1
	}
	return float64(p-n) / float64(p+n)
}

// Predict implements ml.Classifier.
func (j *JRip) Predict(features []float64) int {
	if !j.trained {
		panic(ml.ErrNotTrained)
	}
	for i := range j.rules {
		if j.rules[i].Matches(features) {
			return j.rules[i].Label
		}
	}
	return j.defaultLabel
}

// Rules returns the learned rule list (excluding the default rule).
func (j *JRip) Rules() []Rule {
	if !j.trained {
		panic(ml.ErrNotTrained)
	}
	return j.rules
}

// DefaultLabel returns the default (fall-through) class.
func (j *JRip) DefaultLabel() int {
	if !j.trained {
		panic(ml.ErrNotTrained)
	}
	return j.defaultLabel
}

// Dim implements ml.Model.
func (j *JRip) Dim() int {
	if !j.trained {
		panic(ml.ErrNotTrained)
	}
	return j.dim
}

// NumClasses implements ml.Model.
func (j *JRip) NumClasses() int {
	if !j.trained {
		panic(ml.ErrNotTrained)
	}
	return j.numClasses
}

// NumConditions returns the total number of threshold literals across all
// rules; the hardware model sizes the comparator bank from it.
func (j *JRip) NumConditions() int {
	if !j.trained {
		panic(ml.ErrNotTrained)
	}
	n := 0
	for _, r := range j.rules {
		n += len(r.Conds)
	}
	return n
}

package rules

import (
	"strings"
	"testing"

	"repro/internal/ml/mltest"
)

func TestJRipSeparable(t *testing.T) {
	x, y := mltest.TwoBlobs(1, 200)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	c := New()
	if err := c.Train(xtr, ytr, 2); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c.Predict, xte, yte); acc < 0.93 {
		t.Fatalf("accuracy %v, want >= 0.93", acc)
	}
}

func TestJRipMulticlass(t *testing.T) {
	x, y := mltest.ThreeBlobs(2, 200)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	c := New()
	if err := c.Train(xtr, ytr, 3); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c.Predict, xte, yte); acc < 0.8 {
		t.Fatalf("3-class accuracy %v, want >= 0.8", acc)
	}
}

func TestJRipXOR(t *testing.T) {
	// Conjunctions of axis thresholds solve XOR.
	x, y := mltest.XOR(3, 200)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	c := New()
	if err := c.Train(xtr, ytr, 2); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c.Predict, xte, yte); acc < 0.85 {
		t.Fatalf("XOR accuracy %v, want >= 0.85", acc)
	}
}

func TestJRipDefaultIsMajority(t *testing.T) {
	x, y := mltest.Blobs(4, [][]float64{{0}, {6}}, 50, 0.5)
	// Make class 1 the clear majority by appending extra rows.
	for i := 0; i < 100; i++ {
		x = append(x, []float64{6.1})
		y = append(y, 1)
	}
	c := New()
	if err := c.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	if c.DefaultLabel() != 1 {
		t.Fatalf("default label %d, want majority class 1", c.DefaultLabel())
	}
}

func TestJRipRuleStructure(t *testing.T) {
	x, y := mltest.TwoBlobs(5, 150)
	c := New()
	if err := c.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	rules := c.Rules()
	if len(rules) == 0 {
		t.Fatal("no rules learned on separable data")
	}
	if c.NumConditions() == 0 {
		t.Fatal("rules have no conditions")
	}
	// Rules must target the minority class(es), never the default.
	for _, r := range rules {
		if r.Label == c.DefaultLabel() {
			t.Fatalf("rule targets the default class: %s", r.String())
		}
		if len(r.Conds) == 0 {
			t.Fatal("empty rule in list")
		}
	}
}

func TestConditionMatchesAndString(t *testing.T) {
	le := Condition{Attr: 0, Op: 'l', Thr: 5}
	gt := Condition{Attr: 1, Op: 'g', Thr: 2}
	if !le.Matches([]float64{5, 0}) || le.Matches([]float64{5.1, 0}) {
		t.Fatal("<= condition wrong")
	}
	if !gt.Matches([]float64{0, 2.1}) || gt.Matches([]float64{0, 2}) {
		t.Fatal("> condition wrong")
	}
	if !strings.Contains(le.String(), "<=") || !strings.Contains(gt.String(), ">") {
		t.Fatal("condition rendering wrong")
	}
	r := Rule{Conds: []Condition{le, gt}, Label: 1}
	if !r.Matches([]float64{4, 3}) || r.Matches([]float64{4, 1}) {
		t.Fatal("rule conjunction wrong")
	}
	if !strings.Contains(r.String(), "and") {
		t.Fatal("rule rendering wrong")
	}
}

func TestJRipDeterministicWithSeed(t *testing.T) {
	x, y := mltest.ThreeBlobs(6, 120)
	a, b := New(), New()
	a.Seed, b.Seed = 4, 4
	if err := a.Train(x, y, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.Train(x, y, 3); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if a.Predict(x[i]) != b.Predict(x[i]) {
			t.Fatal("same seed, different rules")
		}
	}
}

func TestJRipPanicsUntrained(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic before Train")
		}
	}()
	New().Predict([]float64{1})
}

func TestJRipRejectsBadInput(t *testing.T) {
	if err := New().Train(nil, nil, 2); err == nil {
		t.Fatal("accepted empty set")
	}
}

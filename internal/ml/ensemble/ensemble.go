// Package ensemble implements the ensemble-learning techniques the
// thesis's related-work line builds on (Khasawneh et al. RAID'15, Sayadi
// et al. DAC'18 study them for hardware malware detection): bagging,
// AdaBoost.M1 boosting, majority voting, and stacked generalization over
// the repository's base classifiers.
package ensemble

import (
	"fmt"
	"math"

	"repro/internal/ml"
	"repro/internal/ml/linear"
	"repro/internal/ml/tree"
	"repro/internal/rng"
)

// Factory builds a fresh, untrained base classifier.
type Factory func() ml.Classifier

// Bagging trains N base classifiers on bootstrap resamples and predicts
// by majority vote.
type Bagging struct {
	// Base builds each member (required).
	Base Factory
	// N is the ensemble size (default 10, WEKA's default).
	N int
	// Seed controls the bootstrap draws.
	Seed uint64

	models     []ml.Classifier
	numClasses int
	trained    bool
}

// Name implements ml.Classifier.
func (b *Bagging) Name() string { return "Bagging" }

// Train implements ml.Classifier.
func (b *Bagging) Train(x [][]float64, y []int, numClasses int) error {
	if b.Base == nil {
		return fmt.Errorf("ensemble: Bagging.Base is nil")
	}
	if _, err := ml.CheckTrainingSet(x, y, numClasses); err != nil {
		return err
	}
	if b.N <= 0 {
		b.N = 10
	}
	b.numClasses = numClasses
	b.models = make([]ml.Classifier, b.N)
	src := rng.New(b.Seed)
	n := len(x)
	for m := 0; m < b.N; m++ {
		bx := make([][]float64, n)
		by := make([]int, n)
		for i := 0; i < n; i++ {
			j := src.Intn(n)
			bx[i] = x[j]
			by[i] = y[j]
		}
		c := b.Base()
		if err := c.Train(bx, by, numClasses); err != nil {
			return fmt.Errorf("ensemble: bagging member %d: %w", m, err)
		}
		b.models[m] = c
	}
	b.trained = true
	return nil
}

// Predict implements ml.Classifier by unweighted majority vote.
func (b *Bagging) Predict(features []float64) int {
	if !b.trained {
		panic(ml.ErrNotTrained)
	}
	votes := make([]int, b.numClasses)
	for _, m := range b.models {
		votes[m.Predict(features)]++
	}
	return ml.ArgMaxInt(votes)
}

// Members returns the trained base models.
func (b *Bagging) Members() []ml.Classifier {
	if !b.trained {
		panic(ml.ErrNotTrained)
	}
	return b.models
}

// AdaBoostM1 is Freund & Schapire's AdaBoost.M1 with weighted
// resampling (base learners need not support instance weights).
type AdaBoostM1 struct {
	// Base builds each weak learner (required).
	Base Factory
	// Rounds is the maximum boosting rounds (default 10).
	Rounds int
	// Seed controls resampling.
	Seed uint64

	models     []ml.Classifier
	alphas     []float64
	numClasses int
	trained    bool
}

// Name implements ml.Classifier.
func (a *AdaBoostM1) Name() string { return "AdaBoostM1" }

// Train implements ml.Classifier.
func (a *AdaBoostM1) Train(x [][]float64, y []int, numClasses int) error {
	if a.Base == nil {
		return fmt.Errorf("ensemble: AdaBoostM1.Base is nil")
	}
	if _, err := ml.CheckTrainingSet(x, y, numClasses); err != nil {
		return err
	}
	if a.Rounds <= 0 {
		a.Rounds = 10
	}
	a.numClasses = numClasses
	a.models = a.models[:0]
	a.alphas = a.alphas[:0]
	src := rng.New(a.Seed)

	n := len(x)
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	for round := 0; round < a.Rounds; round++ {
		// Weighted resample.
		bx := make([][]float64, n)
		by := make([]int, n)
		for i := 0; i < n; i++ {
			j := src.Categorical(w)
			bx[i] = x[j]
			by[i] = y[j]
		}
		c := a.Base()
		if err := c.Train(bx, by, numClasses); err != nil {
			return fmt.Errorf("ensemble: boosting round %d: %w", round, err)
		}
		// Weighted error on the original distribution.
		eps := 0.0
		wrong := make([]bool, n)
		for i := range x {
			if c.Predict(x[i]) != y[i] {
				eps += w[i]
				wrong[i] = true
			}
		}
		if eps <= 0 {
			// Perfect learner: keep it with a large finite weight.
			a.models = append(a.models, c)
			a.alphas = append(a.alphas, 10)
			break
		}
		if eps >= 0.5 {
			if len(a.models) == 0 {
				// Weak learner no better than chance even on round 0:
				// keep one model so Predict works, with neutral weight.
				a.models = append(a.models, c)
				a.alphas = append(a.alphas, 1e-3)
			}
			break
		}
		beta := eps / (1 - eps)
		a.models = append(a.models, c)
		a.alphas = append(a.alphas, math.Log(1/beta))
		// Reweight: correct instances shrink by beta, then normalize.
		sum := 0.0
		for i := range w {
			if !wrong[i] {
				w[i] *= beta
			}
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
	}
	a.trained = true
	return nil
}

// Predict implements ml.Classifier: alpha-weighted vote.
func (a *AdaBoostM1) Predict(features []float64) int {
	if !a.trained {
		panic(ml.ErrNotTrained)
	}
	votes := make([]float64, a.numClasses)
	for i, m := range a.models {
		votes[m.Predict(features)] += a.alphas[i]
	}
	return ml.ArgMax(votes)
}

// NumRounds returns how many boosting rounds survived training.
func (a *AdaBoostM1) NumRounds() int {
	if !a.trained {
		panic(ml.ErrNotTrained)
	}
	return len(a.models)
}

// Voting combines heterogeneous classifiers by majority vote, breaking
// ties toward the earlier model in the list (WEKA's Vote with majority
// combination).
type Voting struct {
	// Factories build the member classifiers (required, >= 1).
	Factories []Factory

	models     []ml.Classifier
	numClasses int
	trained    bool
}

// Name implements ml.Classifier.
func (v *Voting) Name() string { return "Voting" }

// Train implements ml.Classifier.
func (v *Voting) Train(x [][]float64, y []int, numClasses int) error {
	if len(v.Factories) == 0 {
		return fmt.Errorf("ensemble: Voting has no member factories")
	}
	if _, err := ml.CheckTrainingSet(x, y, numClasses); err != nil {
		return err
	}
	v.numClasses = numClasses
	v.models = make([]ml.Classifier, len(v.Factories))
	for i, f := range v.Factories {
		c := f()
		if err := c.Train(x, y, numClasses); err != nil {
			return fmt.Errorf("ensemble: voting member %d (%s): %w", i, c.Name(), err)
		}
		v.models[i] = c
	}
	v.trained = true
	return nil
}

// Predict implements ml.Classifier.
func (v *Voting) Predict(features []float64) int {
	if !v.trained {
		panic(ml.ErrNotTrained)
	}
	votes := make([]float64, v.numClasses)
	for i, m := range v.models {
		// Earlier members win ties via an epsilon bonus.
		votes[m.Predict(features)] += 1 + float64(len(v.models)-i)*1e-9
	}
	return ml.ArgMax(votes)
}

// Stacking trains base classifiers and a logistic meta-learner over their
// predictions, using an internal holdout so the meta-learner never sees
// the bases' training data (stacked generalization, Wolpert).
type Stacking struct {
	// Factories build the base classifiers (required, >= 1).
	Factories []Factory
	// MetaFrac is the fraction of data held out for the meta-learner
	// (default 0.3).
	MetaFrac float64
	// Seed controls the holdout split.
	Seed uint64

	models     []ml.Classifier
	meta       *linear.Logistic
	numClasses int
	trained    bool
}

// Name implements ml.Classifier.
func (s *Stacking) Name() string { return "Stacking" }

// Train implements ml.Classifier.
func (s *Stacking) Train(x [][]float64, y []int, numClasses int) error {
	if len(s.Factories) == 0 {
		return fmt.Errorf("ensemble: Stacking has no member factories")
	}
	if _, err := ml.CheckTrainingSet(x, y, numClasses); err != nil {
		return err
	}
	if s.MetaFrac <= 0 || s.MetaFrac >= 1 {
		s.MetaFrac = 0.3
	}
	s.numClasses = numClasses

	src := rng.New(s.Seed)
	perm := src.Perm(len(x))
	nMeta := int(float64(len(x)) * s.MetaFrac)
	if nMeta < numClasses || len(x)-nMeta < numClasses {
		return fmt.Errorf("ensemble: too few rows (%d) for stacking", len(x))
	}
	metaIdx, baseIdx := perm[:nMeta], perm[nMeta:]

	bx := make([][]float64, len(baseIdx))
	by := make([]int, len(baseIdx))
	for i, j := range baseIdx {
		bx[i], by[i] = x[j], y[j]
	}
	s.models = make([]ml.Classifier, len(s.Factories))
	for i, f := range s.Factories {
		c := f()
		if err := c.Train(bx, by, numClasses); err != nil {
			return fmt.Errorf("ensemble: stacking base %d (%s): %w", i, c.Name(), err)
		}
		s.models[i] = c
	}

	// Meta features: one-hot base predictions on the holdout.
	mx := make([][]float64, len(metaIdx))
	my := make([]int, len(metaIdx))
	for i, j := range metaIdx {
		mx[i] = s.metaFeatures(x[j])
		my[i] = y[j]
	}
	s.meta = linear.NewLogistic()
	s.meta.Seed = s.Seed ^ 0x5bd1e995
	if err := s.meta.Train(mx, my, numClasses); err != nil {
		return fmt.Errorf("ensemble: stacking meta-learner: %w", err)
	}
	s.trained = true
	return nil
}

// metaFeatures encodes the base models' predictions one-hot.
func (s *Stacking) metaFeatures(features []float64) []float64 {
	out := make([]float64, len(s.models)*s.numClasses)
	for i, m := range s.models {
		out[i*s.numClasses+m.Predict(features)] = 1
	}
	return out
}

// Predict implements ml.Classifier.
func (s *Stacking) Predict(features []float64) int {
	if !s.trained {
		panic(ml.ErrNotTrained)
	}
	return s.meta.Predict(s.metaFeatures(features))
}

// RandomForest is Breiman's random forest: bagged random-subspace trees
// with majority voting.
type RandomForest struct {
	// Trees is the forest size (default 20).
	Trees int
	// K is the attribute subset per split (0 = sqrt(dim)).
	K int
	// MaxDepth bounds member depth (0 = unlimited).
	MaxDepth int
	// Seed controls bootstraps and subspace draws.
	Seed uint64

	bag *Bagging
}

// Name implements ml.Classifier.
func (rf *RandomForest) Name() string { return "RandomForest" }

// Train implements ml.Classifier.
func (rf *RandomForest) Train(x [][]float64, y []int, numClasses int) error {
	if rf.Trees <= 0 {
		rf.Trees = 20
	}
	seed := rf.Seed
	memberSeed := seed
	rf.bag = &Bagging{
		N:    rf.Trees,
		Seed: seed,
		Base: func() ml.Classifier {
			memberSeed++
			t := tree.NewRandomTree()
			t.K = rf.K
			t.MaxDepth = rf.MaxDepth
			t.Seed = memberSeed * 0x9e3779b97f4a7c15
			return t
		},
	}
	return rf.bag.Train(x, y, numClasses)
}

// Predict implements ml.Classifier.
func (rf *RandomForest) Predict(features []float64) int {
	if rf.bag == nil {
		panic(ml.ErrNotTrained)
	}
	return rf.bag.Predict(features)
}

package ensemble

import (
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/linear"
	"repro/internal/ml/mltest"
	"repro/internal/ml/oner"
	"repro/internal/ml/tree"
	"repro/internal/rng"
)

// diagonal builds a binary problem with boundary x0 + x1 > 0.
func diagonal(seed uint64, n int) ([][]float64, []int) {
	src := rng.New(seed)
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := src.Normal(0, 2), src.Normal(0, 2)
		x[i] = []float64{a, b}
		if a+b > 0 {
			y[i] = 1
		}
	}
	return x, y
}

func stumpFactory() Factory {
	return func() ml.Classifier { return &tree.J48{MinLeaf: 2, CF: 0.25, MaxDepth: 1} }
}

func treeFactory() Factory {
	return func() ml.Classifier { return tree.NewJ48() }
}

func TestBaggingAccuracy(t *testing.T) {
	x, y := mltest.ThreeBlobs(1, 200)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	b := &Bagging{Base: treeFactory(), N: 10, Seed: 1}
	if err := b.Train(xtr, ytr, 3); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(b.Predict, xte, yte); acc < 0.85 {
		t.Fatalf("bagging accuracy %v", acc)
	}
	if len(b.Members()) != 10 {
		t.Fatalf("members %d", len(b.Members()))
	}
}

func TestBaggingReducesVariance(t *testing.T) {
	// On noisy data a bagged tree should do at least as well as a single
	// tree trained the same way (averaged over test accuracy).
	x, y := mltest.Blobs(2, [][]float64{{0, 0}, {1.5, 1.5}}, 300, 1.3)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	single := tree.NewJ48()
	if err := single.Train(xtr, ytr, 2); err != nil {
		t.Fatal(err)
	}
	bagged := &Bagging{Base: treeFactory(), N: 15, Seed: 2}
	if err := bagged.Train(xtr, ytr, 2); err != nil {
		t.Fatal(err)
	}
	sAcc := mltest.Accuracy(single.Predict, xte, yte)
	bAcc := mltest.Accuracy(bagged.Predict, xte, yte)
	if bAcc+0.03 < sAcc {
		t.Fatalf("bagging %v clearly worse than single tree %v", bAcc, sAcc)
	}
}

func TestAdaBoostBoostsStumps(t *testing.T) {
	// A diagonal boundary (x0 + x1 > 0) cannot be matched by one
	// axis-aligned stump, but stumps stay better than chance, so boosting
	// staircases toward the diagonal. (XOR would not work here: every
	// stump is exactly at chance and AdaBoost stops immediately.)
	x, y := diagonal(3, 400)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)

	stump := stumpFactory()()
	if err := stump.Train(xtr, ytr, 2); err != nil {
		t.Fatal(err)
	}
	sAcc := mltest.Accuracy(stump.Predict, xte, yte)

	boost := &AdaBoostM1{Base: stumpFactory(), Rounds: 25, Seed: 3}
	if err := boost.Train(xtr, ytr, 2); err != nil {
		t.Fatal(err)
	}
	bAcc := mltest.Accuracy(boost.Predict, xte, yte)
	if bAcc <= sAcc+0.1 {
		t.Fatalf("boosting %v did not improve on stump %v", bAcc, sAcc)
	}
	if boost.NumRounds() < 2 {
		t.Fatalf("only %d boosting rounds", boost.NumRounds())
	}
}

func TestAdaBoostPerfectLearnerStopsEarly(t *testing.T) {
	x, y := mltest.TwoBlobs(4, 150)
	boost := &AdaBoostM1{Base: treeFactory(), Rounds: 20, Seed: 4}
	if err := boost.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	// Separable blobs: a full tree nails it; boosting should stop well
	// before 20 rounds.
	if boost.NumRounds() > 5 {
		t.Fatalf("boosting ran %d rounds on separable data", boost.NumRounds())
	}
	if acc := mltest.Accuracy(boost.Predict, x, y); acc < 0.97 {
		t.Fatalf("boosted accuracy %v", acc)
	}
}

func TestVotingHeterogeneous(t *testing.T) {
	x, y := mltest.ThreeBlobs(5, 200)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	v := &Voting{Factories: []Factory{
		func() ml.Classifier { return oner.New() },
		func() ml.Classifier { return tree.NewJ48() },
		func() ml.Classifier { return linear.NewLogistic() },
	}}
	if err := v.Train(xtr, ytr, 3); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(v.Predict, xte, yte); acc < 0.85 {
		t.Fatalf("voting accuracy %v", acc)
	}
}

func TestStacking(t *testing.T) {
	x, y := mltest.ThreeBlobs(6, 300)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)
	s := &Stacking{
		Factories: []Factory{
			func() ml.Classifier { return tree.NewJ48() },
			func() ml.Classifier { return linear.NewLogistic() },
		},
		Seed: 6,
	}
	if err := s.Train(xtr, ytr, 3); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(s.Predict, xte, yte); acc < 0.8 {
		t.Fatalf("stacking accuracy %v", acc)
	}
}

func TestEnsembleErrors(t *testing.T) {
	x, y := mltest.TwoBlobs(7, 20)
	if err := (&Bagging{}).Train(x, y, 2); err == nil {
		t.Fatal("bagging accepted nil base")
	}
	if err := (&AdaBoostM1{}).Train(x, y, 2); err == nil {
		t.Fatal("boosting accepted nil base")
	}
	if err := (&Voting{}).Train(x, y, 2); err == nil {
		t.Fatal("voting accepted no factories")
	}
	if err := (&Stacking{}).Train(x, y, 2); err == nil {
		t.Fatal("stacking accepted no factories")
	}
	s := &Stacking{Factories: []Factory{treeFactory()}}
	if err := s.Train(x[:3], y[:3], 2); err == nil {
		t.Fatal("stacking accepted too few rows")
	}
	b := &Bagging{Base: treeFactory()}
	if err := b.Train(nil, nil, 2); err == nil {
		t.Fatal("bagging accepted empty set")
	}
}

func TestEnsemblePanicsUntrained(t *testing.T) {
	for _, f := range []func(){
		func() { (&Bagging{}).Predict([]float64{1}) },
		func() { (&AdaBoostM1{}).Predict([]float64{1}) },
		func() { (&Voting{}).Predict([]float64{1}) },
		func() { (&Stacking{}).Predict([]float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic before Train")
				}
			}()
			f()
		}()
	}
}

func TestEnsembleDeterministic(t *testing.T) {
	x, y := mltest.ThreeBlobs(8, 150)
	a := &Bagging{Base: treeFactory(), N: 5, Seed: 11}
	b := &Bagging{Base: treeFactory(), N: 5, Seed: 11}
	if err := a.Train(x, y, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.Train(x, y, 3); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if a.Predict(x[i]) != b.Predict(x[i]) {
			t.Fatal("same seed, different ensemble")
		}
	}
}

func TestRandomTreeAndForest(t *testing.T) {
	x, y := mltest.ThreeBlobs(9, 300)
	xtr, ytr, xte, yte := mltest.SplitHalf(x, y)

	rt := tree.NewRandomTree()
	if err := rt.Train(xtr, ytr, 3); err != nil {
		t.Fatal(err)
	}
	if rt.Size() < 3 {
		t.Fatalf("random tree size %d", rt.Size())
	}
	rtAcc := mltest.Accuracy(rt.Predict, xte, yte)

	rf := &RandomForest{Trees: 15, Seed: 9}
	if err := rf.Train(xtr, ytr, 3); err != nil {
		t.Fatal(err)
	}
	rfAcc := mltest.Accuracy(rf.Predict, xte, yte)
	if rfAcc < 0.85 {
		t.Fatalf("forest accuracy %v", rfAcc)
	}
	// The forest should not be clearly worse than one random tree.
	if rfAcc+0.03 < rtAcc {
		t.Fatalf("forest %v worse than single random tree %v", rfAcc, rtAcc)
	}
}

func TestRandomForestDeterministic(t *testing.T) {
	x, y := mltest.TwoBlobs(10, 150)
	a := &RandomForest{Trees: 5, Seed: 3}
	b := &RandomForest{Trees: 5, Seed: 3}
	if err := a.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if a.Predict(x[i]) != b.Predict(x[i]) {
			t.Fatal("same seed, different forests")
		}
	}
}

func TestRandomForestPanicsUntrained(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic before Train")
		}
	}()
	(&RandomForest{}).Predict([]float64{1})
}

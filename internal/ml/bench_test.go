package ml_test

import (
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/bayes"
	"repro/internal/ml/linear"
	"repro/internal/ml/mlp"
	"repro/internal/ml/mltest"
	"repro/internal/ml/oner"
	"repro/internal/ml/rules"
	"repro/internal/ml/tree"
)

// benchTrain measures training cost of one classifier on a fixed 3-class
// problem.
func benchTrain(b *testing.B, factory func() ml.Classifier) {
	x, y := mltest.ThreeBlobs(1, 300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := factory()
		if err := c.Train(x, y, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPredict measures inference cost.
func benchPredict(b *testing.B, factory func() ml.Classifier) {
	x, y := mltest.ThreeBlobs(1, 300)
	c := factory()
	if err := c.Train(x, y, 3); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Predict(x[i%len(x)])
	}
}

func BenchmarkTrainOneR(b *testing.B) { benchTrain(b, func() ml.Classifier { return oner.New() }) }
func BenchmarkTrainJ48(b *testing.B)  { benchTrain(b, func() ml.Classifier { return tree.NewJ48() }) }
func BenchmarkTrainREPTree(b *testing.B) {
	benchTrain(b, func() ml.Classifier { return tree.NewREPTree() })
}
func BenchmarkTrainJRip(b *testing.B) { benchTrain(b, func() ml.Classifier { return rules.New() }) }
func BenchmarkTrainNB(b *testing.B)   { benchTrain(b, func() ml.Classifier { return bayes.New() }) }
func BenchmarkTrainLogistic(b *testing.B) {
	benchTrain(b, func() ml.Classifier { return linear.NewLogistic() })
}
func BenchmarkTrainSVM(b *testing.B) { benchTrain(b, func() ml.Classifier { return linear.NewSVM() }) }
func BenchmarkTrainMLP(b *testing.B) { benchTrain(b, func() ml.Classifier { return mlp.New() }) }

func BenchmarkPredictOneR(b *testing.B) { benchPredict(b, func() ml.Classifier { return oner.New() }) }
func BenchmarkPredictJ48(b *testing.B) {
	benchPredict(b, func() ml.Classifier { return tree.NewJ48() })
}
func BenchmarkPredictMLP(b *testing.B) { benchPredict(b, func() ml.Classifier { return mlp.New() }) }
func BenchmarkPredictLogistic(b *testing.B) {
	benchPredict(b, func() ml.Classifier { return linear.NewLogistic() })
}

package ml

import (
	"strings"
	"testing"
)

type stubClassifier struct{ seed uint64 }

func (s *stubClassifier) Name() string                              { return "Stub" }
func (s *stubClassifier) Train(x [][]float64, y []int, k int) error { return nil }
func (s *stubClassifier) Predict(features []float64) int            { return 0 }

func stubFactory(seed uint64) Classifier { return &stubClassifier{seed: seed} }

func TestRegistryRegisterAndNew(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(Spec{Name: "A", Binary: true, New: stubFactory})
	r.MustRegister(Spec{Name: "B", Multiclass: true, Label: "B-label", New: stubFactory})

	c, err := r.New("A", 7)
	if err != nil {
		t.Fatal(err)
	}
	if c.(*stubClassifier).seed != 7 {
		t.Fatal("factory did not receive the seed")
	}
	if _, err := r.New("missing", 1); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("unknown name error %v", err)
	}
}

func TestRegistryOrderAndFilters(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"Z", "A", "M"} {
		r.MustRegister(Spec{Name: n, Binary: n != "M", New: stubFactory})
	}
	names := r.Names()
	if len(names) != 3 || names[0] != "Z" || names[1] != "A" || names[2] != "M" {
		t.Fatalf("registration order lost: %v", names)
	}
	bin := r.NamesWhere(func(s Spec) bool { return s.Binary })
	if len(bin) != 2 || bin[0] != "Z" || bin[1] != "A" {
		t.Fatalf("binary filter %v", bin)
	}
	sorted := r.SortedNames()
	if sorted[0] != "A" || sorted[2] != "Z" {
		t.Fatalf("sorted names %v", sorted)
	}
}

func TestRegistryRejectsBadSpecs(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(Spec{Name: "", New: stubFactory}); err == nil {
		t.Fatal("accepted empty name")
	}
	if err := r.Register(Spec{Name: "X"}); err == nil {
		t.Fatal("accepted nil factory")
	}
	r.MustRegister(Spec{Name: "X", New: stubFactory})
	if err := r.Register(Spec{Name: "X", New: stubFactory}); err == nil {
		t.Fatal("accepted duplicate name")
	}
}

func TestSpecDisplayLabel(t *testing.T) {
	if (Spec{Name: "Logistic", Label: "MLR"}).DisplayLabel() != "MLR" {
		t.Fatal("label not used")
	}
	if (Spec{Name: "MLP"}).DisplayLabel() != "MLP" {
		t.Fatal("name fallback not used")
	}
}

// Package mltest provides shared synthetic datasets for classifier tests:
// separable Gaussian blobs, overlapping blobs, and XOR (non-linearly
// separable) problems, all deterministic in a seed.
package mltest

import "repro/internal/rng"

// Blobs generates n points per class around class-specific centers with
// the given noise stddev. Returns features and labels.
func Blobs(seed uint64, centers [][]float64, n int, noise float64) (x [][]float64, y []int) {
	src := rng.New(seed)
	dim := len(centers[0])
	for c, center := range centers {
		for i := 0; i < n; i++ {
			row := make([]float64, dim)
			for j := range row {
				row[j] = center[j] + src.Normal(0, noise)
			}
			x = append(x, row)
			y = append(y, c)
		}
	}
	// Shuffle jointly so classes interleave.
	src.Shuffle(len(x), func(i, j int) {
		x[i], x[j] = x[j], x[i]
		y[i], y[j] = y[j], y[i]
	})
	return x, y
}

// TwoBlobs is a binary, well-separated 2-D problem.
func TwoBlobs(seed uint64, n int) ([][]float64, []int) {
	return Blobs(seed, [][]float64{{0, 0}, {4, 4}}, n, 0.7)
}

// ThreeBlobs is a 3-class, 4-D problem with moderate overlap.
func ThreeBlobs(seed uint64, n int) ([][]float64, []int) {
	return Blobs(seed, [][]float64{
		{0, 0, 0, 0},
		{3, 3, 0, 0},
		{0, 3, 3, 1},
	}, n, 1.0)
}

// XOR is the classic non-linearly-separable binary problem: four Gaussian
// clusters at square corners, diagonal corners sharing a label.
func XOR(seed uint64, n int) ([][]float64, []int) {
	src := rng.New(seed)
	var x [][]float64
	var y []int
	corners := [][3]float64{
		{0, 0, 0}, {4, 4, 0}, // class 0
		{0, 4, 1}, {4, 0, 1}, // class 1
	}
	for _, c := range corners {
		for i := 0; i < n; i++ {
			x = append(x, []float64{c[0] + src.Normal(0, 0.5), c[1] + src.Normal(0, 0.5)})
			y = append(y, int(c[2]))
		}
	}
	src.Shuffle(len(x), func(i, j int) {
		x[i], x[j] = x[j], x[i]
		y[i], y[j] = y[j], y[i]
	})
	return x, y
}

// Accuracy computes the fraction of correct predictions of predict over
// the given set.
func Accuracy(predict func([]float64) int, x [][]float64, y []int) float64 {
	correct := 0
	for i := range x {
		if predict(x[i]) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

// SplitHalf splits a dataset into two halves (train/test).
func SplitHalf(x [][]float64, y []int) (xa [][]float64, ya []int, xb [][]float64, yb []int) {
	h := len(x) / 2
	return x[:h], y[:h], x[h:], y[h:]
}

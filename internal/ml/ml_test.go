package ml

import "testing"

func TestCheckTrainingSet(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}}
	y := []int{0, 1}
	dim, err := CheckTrainingSet(x, y, 2)
	if err != nil || dim != 2 {
		t.Fatalf("valid set rejected: dim=%d err=%v", dim, err)
	}
	if _, err := CheckTrainingSet(nil, nil, 2); err == nil {
		t.Fatal("accepted empty set")
	}
	if _, err := CheckTrainingSet(x, []int{0}, 2); err == nil {
		t.Fatal("accepted length mismatch")
	}
	if _, err := CheckTrainingSet(x, y, 1); err == nil {
		t.Fatal("accepted numClasses < 2")
	}
	if _, err := CheckTrainingSet([][]float64{{1}, {1, 2}}, y, 2); err == nil {
		t.Fatal("accepted ragged rows")
	}
	if _, err := CheckTrainingSet(x, []int{0, 5}, 2); err == nil {
		t.Fatal("accepted out-of-range label")
	}
	if _, err := CheckTrainingSet([][]float64{{}, {}}, y, 2); err == nil {
		t.Fatal("accepted zero-dimensional features")
	}
}

func TestMajorityLabel(t *testing.T) {
	label, count := MajorityLabel([]int{0, 1, 1, 2, 1}, 3)
	if label != 1 || count != 3 {
		t.Fatalf("majority = %d/%d", label, count)
	}
	// Ties break toward the smaller label.
	label, _ = MajorityLabel([]int{0, 0, 1, 1}, 2)
	if label != 0 {
		t.Fatalf("tie broke to %d, want 0", label)
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float64{1, 5, 3}) != 1 {
		t.Fatal("ArgMax wrong")
	}
	if ArgMax([]float64{7}) != 0 {
		t.Fatal("ArgMax single wrong")
	}
	// First wins ties.
	if ArgMax([]float64{2, 2}) != 0 {
		t.Fatal("ArgMax tie wrong")
	}
}

func TestArgMaxInt(t *testing.T) {
	if ArgMaxInt([]int{0, 9, 9}) != 1 {
		t.Fatal("ArgMaxInt tie wrong")
	}
}

func TestCopyMatrix(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}}
	c := CopyMatrix(x)
	c[0][0] = 99
	if x[0][0] != 1 {
		t.Fatal("CopyMatrix did not deep copy")
	}
}

package pca

import (
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

func benchData(rows, cols int) *mat.Matrix {
	src := rng.New(1)
	x := mat.NewMatrix(rows, cols)
	for i := range x.Data {
		x.Data[i] = src.Normal(0, 1)
	}
	return x
}

func BenchmarkFit16Features(b *testing.B) {
	x := benchData(2000, 16)
	attrs := make([]string, 16)
	for i := range attrs {
		attrs[i] = "a"
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(x, attrs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProjectMatrix(b *testing.B) {
	x := benchData(2000, 16)
	attrs := make([]string, 16)
	for i := range attrs {
		attrs[i] = "a"
	}
	p, err := Fit(x, attrs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ProjectMatrix(x, 2); err != nil {
			b.Fatal(err)
		}
	}
}

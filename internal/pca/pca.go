// Package pca implements Principal Component Analysis the way the paper
// uses it through WEKA: standardize the 16 HPC attributes, eigendecompose
// the correlation matrix, rank the original attributes by their loadings
// on the variance-covering components (WEKA PrincipalComponents -R 0.95
// with a Ranker), select per-class custom feature subsets (Table 2), and
// project onto the top two components for the per-family scatter plots
// (Figures 9-12).
package pca

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mat"
	"repro/internal/parallel"
)

// PCA is a fitted principal-component model.
type PCA struct {
	// Attributes are the column names of the fitted data.
	Attributes []string
	// Values are the eigenvalues in descending order.
	Values []float64
	// Vectors holds the eigenvectors as columns (Vectors[:,k] pairs with
	// Values[k]); rows are attributes.
	Vectors *mat.Matrix
	// Means and Stddevs are the standardization statistics of the fit.
	Means, Stddevs []float64
}

// Fit runs PCA over the rows of x (instances x attributes). Attribute
// names must match the column count. The data is standardized internally,
// so the decomposition is of the correlation matrix, matching WEKA's
// default "standardize" preprocessing.
func Fit(x *mat.Matrix, attributes []string) (*PCA, error) {
	if x.Rows < 2 {
		return nil, fmt.Errorf("pca: need at least 2 rows, have %d", x.Rows)
	}
	if len(attributes) != x.Cols {
		return nil, fmt.Errorf("pca: %d attribute names for %d columns", len(attributes), x.Cols)
	}
	z, means, stddevs := x.Standardize()
	cov := z.Covariance()
	vals, vecs, err := mat.EigenSym(cov)
	if err != nil {
		return nil, fmt.Errorf("pca: eigendecomposition: %w", err)
	}
	// Clamp tiny negative eigenvalues introduced by round-off.
	for i, v := range vals {
		if v < 0 {
			vals[i] = 0
		}
	}
	return &PCA{
		Attributes: append([]string{}, attributes...),
		Values:     vals,
		Vectors:    vecs,
		Means:      means,
		Stddevs:    stddevs,
	}, nil
}

// TotalVariance returns the sum of eigenvalues.
func (p *PCA) TotalVariance() float64 {
	s := 0.0
	for _, v := range p.Values {
		s += v
	}
	return s
}

// VarianceFraction returns the fraction of variance explained by the
// first k components.
func (p *PCA) VarianceFraction(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > len(p.Values) {
		k = len(p.Values)
	}
	total := p.TotalVariance()
	if total == 0 {
		return 0
	}
	s := 0.0
	for i := 0; i < k; i++ {
		s += p.Values[i]
	}
	return s / total
}

// NumComponentsFor returns the smallest k whose leading components cover
// at least the given variance fraction (WEKA's -R option, paper: 0.95).
func (p *PCA) NumComponentsFor(coverage float64) int {
	if coverage <= 0 {
		return 1
	}
	for k := 1; k <= len(p.Values); k++ {
		if p.VarianceFraction(k) >= coverage {
			return k
		}
	}
	return len(p.Values)
}

// RankedAttr is one original attribute with its PCA relevance score.
type RankedAttr struct {
	Index int
	Name  string
	Score float64
}

// RankAttributes ranks the original attributes by the magnitude of their
// loadings on the variance-covering components, each component weighted
// by its variance share — the thesis's "rank the attributes to get the
// ranking with respect to eigen vectors". Returns attributes in
// descending relevance order.
func (p *PCA) RankAttributes(coverage float64) []RankedAttr {
	k := p.NumComponentsFor(coverage)
	total := p.TotalVariance()
	out := make([]RankedAttr, len(p.Attributes))
	for j := range p.Attributes {
		score := 0.0
		for c := 0; c < k; c++ {
			w := 0.0
			if total > 0 {
				w = p.Values[c] / total
			}
			score += w * math.Abs(p.Vectors.At(j, c))
		}
		out[j] = RankedAttr{Index: j, Name: p.Attributes[j], Score: score}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	return out
}

// TopAttributes returns the names of the k highest-ranked attributes at
// the given variance coverage.
func (p *PCA) TopAttributes(k int, coverage float64) []string {
	ranked := p.RankAttributes(coverage)
	if k > len(ranked) {
		k = len(ranked)
	}
	names := make([]string, k)
	for i := 0; i < k; i++ {
		names[i] = ranked[i].Name
	}
	return names
}

// Project maps one raw feature row onto the first ncomp principal
// components (standardizing with the fit statistics first).
func (p *PCA) Project(row []float64, ncomp int) ([]float64, error) {
	if len(row) != len(p.Attributes) {
		return nil, fmt.Errorf("pca: row has %d features, want %d", len(row), len(p.Attributes))
	}
	if ncomp <= 0 || ncomp > len(p.Values) {
		return nil, fmt.Errorf("pca: ncomp %d out of range", ncomp)
	}
	z := make([]float64, len(row))
	for j, v := range row {
		d := v - p.Means[j]
		if p.Stddevs[j] > 0 {
			d /= p.Stddevs[j]
		}
		z[j] = d
	}
	out := make([]float64, ncomp)
	for c := 0; c < ncomp; c++ {
		s := 0.0
		for j, v := range z {
			s += v * p.Vectors.At(j, c)
		}
		out[c] = s
	}
	return out, nil
}

// ProjectMatrix projects every row of x onto the first ncomp components.
func (p *PCA) ProjectMatrix(x *mat.Matrix, ncomp int) (*mat.Matrix, error) {
	out := mat.NewMatrix(x.Rows, ncomp)
	for i := 0; i < x.Rows; i++ {
		proj, err := p.Project(x.Row(i), ncomp)
		if err != nil {
			return nil, err
		}
		copy(out.Row(i), proj)
	}
	return out, nil
}

// RankAttributesDiscriminative ranks attributes like RankAttributes but
// weights each principal component by how well it separates two labelled
// clusters (Fisher-style: centroid distance over pooled spread along the
// component) in addition to its variance share. This is the thesis's
// "combination of PCA and Clustering technique": the per-class PCA plots
// (Figures 9-12) show two clusters, and the custom feature sets (Table 2)
// come from the components that pull them apart.
//
// x must be the data the PCA was fitted on (or data of the same shape);
// labels are binary (0/1), one per row.
func (p *PCA) RankAttributesDiscriminative(x *mat.Matrix, labels []int, coverage float64) ([]RankedAttr, error) {
	if x.Rows != len(labels) {
		return nil, fmt.Errorf("pca: %d rows but %d labels", x.Rows, len(labels))
	}
	k := p.NumComponentsFor(coverage)
	proj, err := p.ProjectMatrix(x, k)
	if err != nil {
		return nil, err
	}
	// Per-component Fisher separation of the two clusters.
	sep := make([]float64, k)
	for c := 0; c < k; c++ {
		var m0, m1, n0, n1 float64
		for i := 0; i < proj.Rows; i++ {
			if labels[i] == 0 {
				m0 += proj.At(i, c)
				n0++
			} else {
				m1 += proj.At(i, c)
				n1++
			}
		}
		if n0 == 0 || n1 == 0 {
			return nil, fmt.Errorf("pca: discriminative ranking needs both labels present")
		}
		m0 /= n0
		m1 /= n1
		var v float64
		for i := 0; i < proj.Rows; i++ {
			m := m0
			if labels[i] == 1 {
				m = m1
			}
			d := proj.At(i, c) - m
			v += d * d
		}
		sd := math.Sqrt(v / float64(proj.Rows))
		sep[c] = math.Abs(m1-m0) / (sd + 1e-12)
	}
	total := p.TotalVariance()
	out := make([]RankedAttr, len(p.Attributes))
	for j := range p.Attributes {
		score := 0.0
		for c := 0; c < k; c++ {
			w := sep[c]
			if total > 0 {
				w *= math.Sqrt(p.Values[c] / total)
			}
			score += w * math.Abs(p.Vectors.At(j, c))
		}
		out[j] = RankedAttr{Index: j, Name: p.Attributes[j], Score: score}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	return out, nil
}

// Group is one labelled class group for ClassCustomFeatures: the rows of
// one malware class together with the benign rows, labels 1 and 0.
type Group struct {
	X      *mat.Matrix
	Labels []int
}

// ClassCustomFeatures reproduces the paper's Table 2 procedure: for each
// malware class, PCA is fitted on that class's rows together with the
// benign rows, attributes are ranked by cluster-separating loadings
// (RankAttributesDiscriminative), and the top-k form the class's custom
// feature set. The returned common list holds the attributes present in
// every class's custom set, in the attribute order of attrs (the paper
// found 4 such features).
func ClassCustomFeatures(groups map[string]Group, attrs []string, k int,
	coverage float64) (custom map[string][]string, common []string, err error) {
	if len(groups) == 0 {
		return nil, nil, fmt.Errorf("pca: no class groups")
	}
	// Each class's PCA + ranking is independent; fan out one task per
	// class over a sorted key list so the work assignment (and any error
	// reported) is deterministic.
	names := make([]string, 0, len(groups))
	for name := range groups {
		names = append(names, name)
	}
	sort.Strings(names)
	tops, err := parallel.Map(
		parallel.Options{Name: "pca.custom_features"},
		len(names), func(i int) ([]string, error) {
			name := names[i]
			g := groups[name]
			p, err := Fit(g.X, attrs)
			if err != nil {
				return nil, fmt.Errorf("pca: class %s: %w", name, err)
			}
			ranked, err := p.RankAttributesDiscriminative(g.X, g.Labels, coverage)
			if err != nil {
				return nil, fmt.Errorf("pca: class %s: %w", name, err)
			}
			kk := k
			if kk > len(ranked) {
				kk = len(ranked)
			}
			top := make([]string, kk)
			for j := 0; j < kk; j++ {
				top[j] = ranked[j].Name
			}
			return top, nil
		})
	if err != nil {
		return nil, nil, err
	}
	custom = make(map[string][]string, len(groups))
	inAll := make(map[string]int)
	for i, name := range names {
		custom[name] = tops[i]
		for _, a := range tops[i] {
			inAll[a]++
		}
	}
	for _, a := range attrs {
		if inAll[a] == len(groups) {
			common = append(common, a)
		}
	}
	return custom, common, nil
}

// SVDRankAttributes ranks attributes by their loadings on the leading
// singular directions of the (standardized) data matrix, weighted by
// energy share — the HPCMalHunter-style selection (thesis reference [2],
// Bahador et al.) that works from the SVD of the HPC vector stream rather
// than the covariance eigenstructure.
func SVDRankAttributes(x *mat.Matrix, attrs []string, coverage float64) ([]RankedAttr, error) {
	if len(attrs) != x.Cols {
		return nil, fmt.Errorf("pca: %d attribute names for %d columns", len(attrs), x.Cols)
	}
	if x.Rows < 2 {
		return nil, fmt.Errorf("pca: need at least 2 rows")
	}
	z, _, _ := x.Standardize()
	svd, err := mat.SVD(z)
	if err != nil {
		return nil, err
	}
	if coverage <= 0 || coverage > 1 {
		coverage = 0.95
	}
	k := 1
	for ; k < len(svd.S); k++ {
		if svd.EnergyFraction(k) >= coverage {
			break
		}
	}
	total := 0.0
	for _, s := range svd.S {
		total += s * s
	}
	out := make([]RankedAttr, len(attrs))
	for j := range attrs {
		score := 0.0
		for c := 0; c < k; c++ {
			w := 0.0
			if total > 0 {
				w = svd.S[c] * svd.S[c] / total
			}
			score += w * math.Abs(svd.V.At(j, c))
		}
		out[j] = RankedAttr{Index: j, Name: attrs[j], Score: score}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	return out, nil
}

package pca_test

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/pca"
)

// ExampleFit shows the basic PCA flow: fit, inspect variance coverage,
// rank attributes, project to 2-D.
func ExampleFit() {
	// Three correlated columns: a carries the signal, b = 2a, c is tiny
	// independent noise (deterministic here for a stable example).
	rows := [][]float64{
		{1, 2, 0.01}, {2, 4, -0.02}, {3, 6, 0.03},
		{4, 8, -0.01}, {5, 10, 0.02}, {6, 12, -0.03},
	}
	p, err := pca.Fit(mat.FromRows(rows), []string{"a", "b", "c"})
	if err != nil {
		panic(err)
	}
	fmt.Printf("components for 95%% variance: %d\n", p.NumComponentsFor(0.95))
	fmt.Printf("top attribute: %s\n", p.TopAttributes(1, 0.95)[0])
	proj, _ := p.Project(rows[0], 2)
	fmt.Printf("first row projects to %d components\n", len(proj))
	// Output:
	// components for 95% variance: 2
	// top attribute: a
	// first row projects to 2 components
}

package pca

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

// corrData builds a dataset where columns 0-2 carry one strongly
// correlated signal (so the leading component dominates) and column 3 is
// independent noise.
func corrData(seed uint64, n int) (*mat.Matrix, []string) {
	src := rng.New(seed)
	x := mat.NewMatrix(n, 4)
	for i := 0; i < n; i++ {
		s := src.Normal(0, 3)
		x.Set(i, 0, s+src.Normal(0, 0.3))
		x.Set(i, 1, -s+src.Normal(0, 0.3))
		x.Set(i, 2, 2*s+src.Normal(0, 0.3))
		x.Set(i, 3, src.Normal(0, 0.1))
	}
	return x, []string{"a", "b", "c", "d"}
}

func TestFitBasics(t *testing.T) {
	x, attrs := corrData(1, 500)
	p, err := Fit(x, attrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Values) != 4 {
		t.Fatalf("%d eigenvalues", len(p.Values))
	}
	for i := 1; i < 4; i++ {
		if p.Values[i] > p.Values[i-1]+1e-12 {
			t.Fatal("eigenvalues not descending")
		}
	}
	for _, v := range p.Values {
		if v < 0 {
			t.Fatalf("negative eigenvalue %v", v)
		}
	}
	// Correlation-matrix PCA: eigenvalue sum equals the number of
	// non-degenerate standardized columns.
	if math.Abs(p.TotalVariance()-4) > 1e-6 {
		t.Fatalf("total variance %v, want 4", p.TotalVariance())
	}
}

func TestFitErrors(t *testing.T) {
	x := mat.NewMatrix(1, 3)
	if _, err := Fit(x, []string{"a", "b", "c"}); err == nil {
		t.Fatal("accepted single row")
	}
	x2 := mat.NewMatrix(10, 3)
	if _, err := Fit(x2, []string{"a"}); err == nil {
		t.Fatal("accepted attribute count mismatch")
	}
}

func TestVarianceFractionAndCoverage(t *testing.T) {
	x, attrs := corrData(2, 500)
	p, _ := Fit(x, attrs)
	if f := p.VarianceFraction(4); math.Abs(f-1) > 1e-9 {
		t.Fatalf("full coverage %v, want 1", f)
	}
	if p.VarianceFraction(1) <= p.VarianceFraction(0) {
		t.Fatal("variance fraction not increasing")
	}
	k := p.NumComponentsFor(0.95)
	if k < 1 || k > 4 {
		t.Fatalf("components for 0.95 = %d", k)
	}
	if p.VarianceFraction(k) < 0.95 {
		t.Fatal("coverage target not met")
	}
	if k > 1 && p.VarianceFraction(k-1) >= 0.95 {
		t.Fatal("k not minimal")
	}
	// The correlated triple compresses into one component: 2 components
	// must explain essentially everything.
	if p.VarianceFraction(2) < 0.99 {
		t.Fatalf("2 components explain only %v", p.VarianceFraction(2))
	}
}

func TestRankAttributesFindsSignal(t *testing.T) {
	x, attrs := corrData(3, 800)
	p, _ := Fit(x, attrs)
	ranked := p.RankAttributes(0.95)
	if len(ranked) != 4 {
		t.Fatalf("%d ranked attributes", len(ranked))
	}
	// The correlated signal pair (a, b) must outrank pure noise (d).
	pos := map[string]int{}
	for i, r := range ranked {
		pos[r.Name] = i
	}
	if pos["a"] > pos["d"] || pos["b"] > pos["d"] {
		t.Fatalf("noise outranked signal: %v", ranked)
	}
	// Scores must be descending.
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score+1e-12 {
			t.Fatal("scores not descending")
		}
	}
}

func TestTopAttributes(t *testing.T) {
	x, attrs := corrData(4, 500)
	p, _ := Fit(x, attrs)
	top2 := p.TopAttributes(2, 0.95)
	if len(top2) != 2 {
		t.Fatalf("top2 = %v", top2)
	}
	topAll := p.TopAttributes(99, 0.95)
	if len(topAll) != 4 {
		t.Fatalf("k clamp failed: %v", topAll)
	}
}

func TestProjectReconstruction(t *testing.T) {
	x, attrs := corrData(5, 400)
	p, _ := Fit(x, attrs)
	// Projections onto all components preserve squared norm of the
	// standardized row (orthonormal basis).
	row := x.Row(0)
	proj, err := p.Project(row, 4)
	if err != nil {
		t.Fatal(err)
	}
	z := make([]float64, 4)
	for j, v := range row {
		d := v - p.Means[j]
		if p.Stddevs[j] > 0 {
			d /= p.Stddevs[j]
		}
		z[j] = d
	}
	if math.Abs(mat.Dot(proj, proj)-mat.Dot(z, z)) > 1e-9 {
		t.Fatal("projection does not preserve norm")
	}
}

func TestProjectErrors(t *testing.T) {
	x, attrs := corrData(6, 100)
	p, _ := Fit(x, attrs)
	if _, err := p.Project([]float64{1, 2}, 2); err == nil {
		t.Fatal("accepted wrong row length")
	}
	if _, err := p.Project(x.Row(0), 0); err == nil {
		t.Fatal("accepted ncomp 0")
	}
	if _, err := p.Project(x.Row(0), 5); err == nil {
		t.Fatal("accepted ncomp > dim")
	}
}

func TestProjectMatrixSeparatesClusters(t *testing.T) {
	// Two clusters in 4-D must remain separated in the top-2 projection.
	src := rng.New(7)
	n := 200
	x := mat.NewMatrix(2*n, 4)
	for i := 0; i < n; i++ {
		for j := 0; j < 4; j++ {
			x.Set(i, j, src.Normal(0, 1))
			x.Set(n+i, j, src.Normal(6, 1))
		}
	}
	p, _ := Fit(x, []string{"a", "b", "c", "d"})
	proj, err := p.ProjectMatrix(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	meanA, meanB := 0.0, 0.0
	for i := 0; i < n; i++ {
		meanA += proj.At(i, 0)
		meanB += proj.At(n+i, 0)
	}
	meanA /= float64(n)
	meanB /= float64(n)
	if math.Abs(meanA-meanB) < 3 {
		t.Fatalf("clusters not separated on PC1: %v vs %v", meanA, meanB)
	}
}

// labelledGroup builds a two-cluster dataset: label-1 rows are shifted
// along shiftCols; sharedCols separate the clusters in every group.
func labelledGroup(seed uint64, n int, sharedCols, shiftCols []int) Group {
	src := rng.New(seed)
	x := mat.NewMatrix(2*n, 5)
	labels := make([]int, 2*n)
	for i := 0; i < 2*n; i++ {
		label := 0
		if i >= n {
			label = 1
		}
		labels[i] = label
		for j := 0; j < 5; j++ {
			x.Set(i, j, src.Normal(0, 1))
		}
		if label == 1 {
			for _, c := range sharedCols {
				x.Set(i, c, x.At(i, c)+4)
			}
			for _, c := range shiftCols {
				x.Set(i, c, x.At(i, c)+4)
			}
		}
	}
	return Group{X: x, Labels: labels}
}

func TestClassCustomFeatures(t *testing.T) {
	attrs := []string{"a0", "a1", "a2", "a3", "a4"}
	shared := []int{0, 1}
	groups := map[string]Group{
		"c1": labelledGroup(1, 150, shared, []int{2}),
		"c2": labelledGroup(2, 150, shared, []int{3}),
		"c3": labelledGroup(3, 150, shared, []int{4}),
	}
	custom, common, err := ClassCustomFeatures(groups, attrs, 3, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(custom) != 3 {
		t.Fatalf("custom sets %d", len(custom))
	}
	for name, set := range custom {
		if len(set) != 3 {
			t.Fatalf("class %s custom set %v", name, set)
		}
	}
	// The shared discriminators a0 and a1 must be in every custom set.
	commonSet := map[string]bool{}
	for _, a := range common {
		commonSet[a] = true
	}
	if !commonSet["a0"] || !commonSet["a1"] {
		t.Fatalf("shared discriminators not common: %v (custom %v)", common, custom)
	}
	// Each group's private discriminator must appear in its own set.
	wantPrivate := map[string]string{"c1": "a2", "c2": "a3", "c3": "a4"}
	for name, private := range wantPrivate {
		found := false
		for _, a := range custom[name] {
			if a == private {
				found = true
			}
		}
		if !found {
			t.Fatalf("group %s custom set %v missing its discriminator %s",
				name, custom[name], private)
		}
	}
}

func TestRankAttributesDiscriminative(t *testing.T) {
	g := labelledGroup(5, 200, []int{2}, nil)
	p, err := Fit(g.X, []string{"a0", "a1", "a2", "a3", "a4"})
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := p.RankAttributesDiscriminative(g.X, g.Labels, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Name != "a2" {
		t.Fatalf("discriminator not ranked first: %v", ranked)
	}
	// Errors: label length mismatch, single-cluster labels.
	if _, err := p.RankAttributesDiscriminative(g.X, g.Labels[:3], 0.95); err == nil {
		t.Fatal("accepted label length mismatch")
	}
	ones := make([]int, g.X.Rows)
	for i := range ones {
		ones[i] = 1
	}
	if _, err := p.RankAttributesDiscriminative(g.X, ones, 0.95); err == nil {
		t.Fatal("accepted single-cluster labels")
	}
}

func TestClassCustomFeaturesErrors(t *testing.T) {
	if _, _, err := ClassCustomFeatures(nil, []string{"a"}, 1, 0.95); err == nil {
		t.Fatal("accepted empty groups")
	}
	groups := map[string]Group{"c": {X: mat.NewMatrix(1, 1), Labels: []int{0}}}
	if _, _, err := ClassCustomFeatures(groups, []string{"a"}, 1, 0.95); err == nil {
		t.Fatal("accepted degenerate group")
	}
}

func TestSVDRankAttributes(t *testing.T) {
	x, attrs := corrData(8, 500)
	ranked, err := SVDRankAttributes(x, attrs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 4 {
		t.Fatalf("%d ranked attributes", len(ranked))
	}
	// The correlated signal triple must outrank pure noise (d).
	pos := map[string]int{}
	for i, r := range ranked {
		pos[r.Name] = i
	}
	if pos["a"] > pos["d"] || pos["c"] > pos["d"] {
		t.Fatalf("SVD ranking put noise above signal: %v", ranked)
	}
	// Errors.
	if _, err := SVDRankAttributes(x, attrs[:2], 0.95); err == nil {
		t.Fatal("accepted attribute mismatch")
	}
	if _, err := SVDRankAttributes(mat.NewMatrix(1, 4), attrs, 0.95); err == nil {
		t.Fatal("accepted single row")
	}
}

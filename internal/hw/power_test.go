package hw

import (
	"math"
	"testing"
)

func TestEstimatePowerBasics(t *testing.T) {
	r := &Report{
		Area:      Area{LUT: 1000, FF: 500, DSP: 2, BRAM: 1},
		LatencyNs: 100,
	}
	p := EstimatePower(r, 1)
	if p.DynamicMW <= 0 || p.StaticMW <= 0 {
		t.Fatalf("non-positive power: %+v", p)
	}
	if p.TotalMW() != p.DynamicMW+p.StaticMW {
		t.Fatal("TotalMW wrong")
	}
	// Expected dynamic: 1000*2 + 500*0.6 + 2*180 + 1*220 = 2880 uW.
	if math.Abs(p.DynamicMW-2.88) > 1e-9 {
		t.Fatalf("dynamic %v mW, want 2.88", p.DynamicMW)
	}
	// Energy = 2.88 mW * 100 ns = 288 pJ = 0.288 nJ.
	if math.Abs(p.EnergyPerInferenceNJ-0.288) > 1e-9 {
		t.Fatalf("energy %v nJ, want 0.288", p.EnergyPerInferenceNJ)
	}
}

func TestEstimatePowerActivityScaling(t *testing.T) {
	r := &Report{Area: Area{LUT: 100}, LatencyNs: 10}
	base := EstimatePower(r, 1)
	busy := EstimatePower(r, 3)
	if math.Abs(busy.DynamicMW-3*base.DynamicMW) > 1e-12 {
		t.Fatal("dynamic power not linear in activity")
	}
	if busy.StaticMW != base.StaticMW {
		t.Fatal("static power should not depend on activity")
	}
	// Non-positive activity falls back to 1.
	def := EstimatePower(r, 0)
	if def.DynamicMW != base.DynamicMW {
		t.Fatal("zero activity did not default to 1")
	}
}

func TestPowerOrderingMatchesPaper(t *testing.T) {
	// The MLP's DSP/BRAM-heavy design must burn more power than OneR's
	// handful of comparators — the paper's embedded-deployment argument.
	reports := synthAll(t)
	pMLP := EstimatePower(reports["MLP"], 1)
	pOneR := EstimatePower(reports["OneR"], 1)
	if pOneR.TotalMW()*4 > pMLP.TotalMW() {
		t.Fatalf("OneR power %v mW not ≪ MLP %v mW", pOneR.TotalMW(), pMLP.TotalMW())
	}
}

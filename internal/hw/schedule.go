package hw

import (
	"fmt"
	"sort"
)

// Budget bounds how many instances of each operator kind the scheduler may
// use. Kinds absent from the map are unconstrained (fully spatial).
type Budget map[OpKind]int

// Schedule is the result of resource-constrained list scheduling: per-op
// start cycles, total latency, and the operator instances actually used
// (which determines datapath area).
type Schedule struct {
	Start  []int
	Cycles int
	// Used counts allocated instances per kind: the maximum number of
	// that kind simultaneously busy in any cycle, capped by the budget.
	Used map[OpKind]int
}

// ScheduleDesign performs latency-oriented list scheduling of the design
// under the budget: ops become ready when their dependencies finish and
// are placed at the earliest cycle with a free instance of their kind.
// Priority among ready ops follows the length of the dependent chain
// below them (standard critical-path list scheduling).
func ScheduleDesign(d *Design, budget Budget) (*Schedule, error) {
	n := len(d.Ops)
	if n == 0 {
		return nil, fmt.Errorf("hw: empty design %q", d.Name)
	}
	for k, v := range budget {
		if v <= 0 {
			return nil, fmt.Errorf("hw: budget for %v is %d", k, v)
		}
	}

	// Downward criticality (height) for priority.
	height := make([]int, n)
	children := make([][]int, n)
	for i, op := range d.Ops {
		for _, dep := range op.Deps {
			children[dep] = append(children[dep], i)
		}
	}
	for i := n - 1; i >= 0; i-- {
		h := 0
		for _, c := range children[i] {
			if height[c] > h {
				h = height[c]
			}
		}
		height[i] = h + SpecFor(d.Ops[i].Kind).Latency
	}

	// busyUntil[kind] tracks per-instance availability.
	instances := make(map[OpKind][]int)
	used := make(map[OpKind]int)
	start := make([]int, n)
	finish := make([]int, n)
	scheduled := make([]bool, n)
	remainingDeps := make([]int, n)
	for i, op := range d.Ops {
		remainingDeps[i] = len(op.Deps)
	}

	ready := make([]int, 0, n)
	for i := range d.Ops {
		if remainingDeps[i] == 0 {
			ready = append(ready, i)
		}
	}
	total := 0
	maxCycle := 0
	for total < n {
		if len(ready) == 0 {
			return nil, fmt.Errorf("hw: scheduling deadlock in %q", d.Name)
		}
		// Highest criticality first; stable tie-break on index.
		sort.SliceStable(ready, func(a, b int) bool { return height[ready[a]] > height[ready[b]] })
		next := ready[0]
		ready = ready[1:]

		op := d.Ops[next]
		spec := SpecFor(op.Kind)
		readyAt := 0
		for _, dep := range op.Deps {
			if finish[dep] > readyAt {
				readyAt = finish[dep]
			}
		}
		// Find the instance that frees up earliest.
		cap, limited := budget[op.Kind]
		insts := instances[op.Kind]
		bestInst := -1
		bestAt := 0
		if !limited || len(insts) < cap {
			// A new instance can be allocated: available immediately.
			bestInst = len(insts)
			bestAt = readyAt
			instances[op.Kind] = append(insts, 0)
			if len(instances[op.Kind]) > used[op.Kind] {
				used[op.Kind] = len(instances[op.Kind])
			}
		} else {
			for i, freeAt := range insts {
				at := readyAt
				if freeAt > at {
					at = freeAt
				}
				if bestInst == -1 || at < bestAt {
					bestInst, bestAt = i, at
				}
			}
		}
		start[next] = bestAt
		finish[next] = bestAt + spec.Latency
		instances[op.Kind][bestInst] = finish[next]
		if finish[next] > maxCycle {
			maxCycle = finish[next]
		}
		scheduled[next] = true
		total++
		for _, c := range children[next] {
			remainingDeps[c]--
			if remainingDeps[c] == 0 {
				ready = append(ready, c)
			}
		}
	}
	return &Schedule{Start: start, Cycles: maxCycle, Used: used}, nil
}

// Validate checks a schedule against its design: dependencies ordered and
// per-kind concurrency within budget. Used by tests as an independent
// checker of the scheduler.
func (s *Schedule) Validate(d *Design, budget Budget) error {
	if len(s.Start) != len(d.Ops) {
		return fmt.Errorf("hw: schedule length mismatch")
	}
	for i, op := range d.Ops {
		for _, dep := range op.Deps {
			depFinish := s.Start[dep] + SpecFor(d.Ops[dep].Kind).Latency
			if s.Start[i] < depFinish {
				return fmt.Errorf("hw: op %d starts at %d before dep %d finishes at %d",
					i, s.Start[i], dep, depFinish)
			}
		}
	}
	// Concurrency check: the number of same-kind ops in flight at any
	// instant must not exceed the budget. Concurrency only changes at
	// interval starts, so checking those suffices.
	for k, cap := range budget {
		type ival struct{ s, e int }
		var ivs []ival
		for i, op := range d.Ops {
			if op.Kind == k {
				ivs = append(ivs, ival{s.Start[i], s.Start[i] + SpecFor(k).Latency})
			}
		}
		for _, a := range ivs {
			concurrent := 0
			for _, b := range ivs {
				if b.s <= a.s && a.s < b.e {
					concurrent++
				}
			}
			if concurrent > cap {
				return fmt.Errorf("hw: %v concurrency %d exceeds budget %d", k, concurrent, cap)
			}
		}
	}
	return nil
}

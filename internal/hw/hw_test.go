package hw

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ml/bayes"
	"repro/internal/ml/linear"
	"repro/internal/ml/mlp"
	"repro/internal/ml/mltest"
	"repro/internal/ml/oner"
	"repro/internal/ml/rules"
	"repro/internal/ml/tree"
)

func TestOpSpecsSane(t *testing.T) {
	for k := OpKind(0); k < numOpKinds; k++ {
		s := SpecFor(k)
		if s.Latency < 1 {
			t.Fatalf("%v has latency %d", k, s.Latency)
		}
		if s.LUT < 0 || s.DSP < 0 || s.BRAM < 0 {
			t.Fatalf("%v has negative resources", k)
		}
		if k.String() == "" {
			t.Fatalf("op kind %d has no name", int(k))
		}
	}
}

func TestAreaArithmetic(t *testing.T) {
	a := Area{LUT: 10, FF: 20, DSP: 1, BRAM: 1}
	a.Add(Area{LUT: 5, DSP: 2})
	if a.LUT != 15 || a.DSP != 3 {
		t.Fatalf("Add result %+v", a)
	}
	s := Area{LUT: 2}.Scale(3)
	if s.LUT != 6 {
		t.Fatalf("Scale result %+v", s)
	}
	eq := Area{LUT: 100, FF: 100, DSP: 1, BRAM: 1}.EquivalentLUTs()
	want := 100 + 50 + LUTPerDSP + LUTPerBRAM
	if eq != want {
		t.Fatalf("EquivalentLUTs = %d, want %d", eq, want)
	}
}

func TestDesignBasics(t *testing.T) {
	d := NewDesign("t")
	a := d.AddOp(OpCmp)
	b := d.AddOp(OpCmp)
	c := d.AddOp(OpAnd, a, b)
	if c != 2 || d.CountKind(OpCmp) != 2 || d.CountKind(OpAnd) != 1 {
		t.Fatal("AddOp/CountKind wrong")
	}
	// cmp(1) -> and(1): critical path 2.
	if cp := d.CriticalPath(); cp != 2 {
		t.Fatalf("critical path %d, want 2", cp)
	}
}

func TestAddOpRejectsForwardDeps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("forward dependency did not panic")
		}
	}()
	NewDesign("t").AddOp(OpCmp, 0)
}

func TestReduceTree(t *testing.T) {
	d := NewDesign("t")
	var leaves []int
	for i := 0; i < 8; i++ {
		leaves = append(leaves, d.AddOp(OpCmp))
	}
	d.AddReduceTree(OpAdd, leaves)
	if d.CountKind(OpAdd) != 7 {
		t.Fatalf("8-leaf reduction used %d adders, want 7", d.CountKind(OpAdd))
	}
	// Balanced: critical path = 1 (cmp) + 3 (log2 8 adds).
	if cp := d.CriticalPath(); cp != 4 {
		t.Fatalf("critical path %d, want 4", cp)
	}
}

func TestScheduleUnconstrainedMatchesCriticalPath(t *testing.T) {
	d := NewDesign("t")
	var leaves []int
	for i := 0; i < 16; i++ {
		leaves = append(leaves, d.AddOp(OpCmp))
	}
	d.AddReduceTree(OpAdd, leaves)
	s, err := ScheduleDesign(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cycles != d.CriticalPath() {
		t.Fatalf("unconstrained schedule %d cycles, critical path %d",
			s.Cycles, d.CriticalPath())
	}
	if err := s.Validate(d, nil); err != nil {
		t.Fatal(err)
	}
	if s.Used[OpCmp] != 16 {
		t.Fatalf("unconstrained schedule used %d cmps, want 16", s.Used[OpCmp])
	}
}

func TestScheduleRespectsBudget(t *testing.T) {
	d := NewDesign("t")
	for i := 0; i < 12; i++ {
		d.AddOp(OpMul) // independent multiplies
	}
	budget := Budget{OpMul: 3}
	s, err := ScheduleDesign(d, budget)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(d, budget); err != nil {
		t.Fatal(err)
	}
	if s.Used[OpMul] > 3 {
		t.Fatalf("used %d muls over budget 3", s.Used[OpMul])
	}
	// 12 ops, 3 instances, latency 3: at least 12 cycles.
	if s.Cycles < 12 {
		t.Fatalf("constrained schedule %d cycles, want >= 12", s.Cycles)
	}
	// Tighter budget must not be faster.
	s1, _ := ScheduleDesign(d, Budget{OpMul: 1})
	if s1.Cycles < s.Cycles {
		t.Fatal("smaller budget produced faster schedule")
	}
}

func TestScheduleErrors(t *testing.T) {
	if _, err := ScheduleDesign(NewDesign("empty"), nil); err == nil {
		t.Fatal("accepted empty design")
	}
	d := NewDesign("t")
	d.AddOp(OpCmp)
	if _, err := ScheduleDesign(d, Budget{OpCmp: 0}); err == nil {
		t.Fatal("accepted zero budget")
	}
}

// trainAll trains one of each classifier on a small binary problem and
// returns the reports.
func synthAll(t *testing.T) map[string]*Report {
	t.Helper()
	x, y := mltest.TwoBlobs(1, 150)
	reports := make(map[string]*Report)

	or := oner.New()
	j48 := tree.NewJ48()
	rep := tree.NewREPTree()
	jr := rules.New()
	lg := linear.NewLogistic()
	lg.Epochs = 10
	sv := linear.NewSVM()
	sv.Epochs = 5
	mp := mlp.New()
	mp.Epochs = 10

	for _, c := range []interface {
		Train([][]float64, []int, int) error
		Name() string
	}{or, j48, rep, jr, lg, sv, mp} {
		if err := c.Train(x, y, 2); err != nil {
			t.Fatalf("training %s: %v", c.Name(), err)
		}
	}
	for _, c := range []interface{ Name() string }{or, j48, rep, jr, lg, sv, mp} {
		r, err := Synthesize(c.(interface {
			Name() string
			Train([][]float64, []int, int) error
			Predict([]float64) int
		}))
		if err != nil {
			t.Fatalf("synthesizing %s: %v", c.Name(), err)
		}
		reports[c.Name()] = r
	}
	nb := bayes.New()
	if err := nb.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	rnb, err := SynthesizeBayes(nb, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	reports[nb.Name()] = rnb
	return reports
}

func TestSynthesizeAllClassifiers(t *testing.T) {
	reports := synthAll(t)
	if len(reports) != 8 {
		t.Fatalf("synthesized %d classifiers, want 8", len(reports))
	}
	for name, r := range reports {
		if r.EquivLUTs <= 0 {
			t.Fatalf("%s area %d", name, r.EquivLUTs)
		}
		if r.Cycles <= 0 || r.LatencyNs <= 0 {
			t.Fatalf("%s latency %d cycles / %v ns", name, r.Cycles, r.LatencyNs)
		}
	}
}

func TestPaperAreaOrdering(t *testing.T) {
	// The paper's central hardware claim (Figures 14/16): OneR and JRip
	// are far smaller than the MLP; simple rules beat neural networks on
	// footprint.
	reports := synthAll(t)
	mlpArea := reports["MLP"].EquivLUTs
	for _, small := range []string{"OneR", "JRip"} {
		if reports[small].EquivLUTs*4 > mlpArea {
			t.Fatalf("%s area %d not ≪ MLP area %d",
				small, reports[small].EquivLUTs, mlpArea)
		}
	}
	// MLP also has more DSPs than any rule/tree model.
	if reports["MLP"].Area.DSP <= reports["J48"].Area.DSP {
		t.Fatal("MLP not DSP-heavier than J48")
	}
}

func TestPaperLatencyOrdering(t *testing.T) {
	reports := synthAll(t)
	// Trees and rules are shallow; the MLP's input-serial MAC rows
	// dominate latency.
	if reports["OneR"].Cycles >= reports["MLP"].Cycles {
		t.Fatalf("OneR latency %d not below MLP %d",
			reports["OneR"].Cycles, reports["MLP"].Cycles)
	}
	if reports["J48"].Cycles >= reports["MLP"].Cycles {
		t.Fatalf("J48 latency %d not below MLP %d",
			reports["J48"].Cycles, reports["MLP"].Cycles)
	}
}

func TestAccuracyPerArea(t *testing.T) {
	r := &Report{EquivLUTs: 2000}
	// 90% accuracy over 2 kLUT = 45.
	if got := AccuracyPerArea(0.9, r); got != 45 {
		t.Fatalf("AccuracyPerArea = %v, want 45", got)
	}
}

func TestSynthesizeRejectsUnknown(t *testing.T) {
	if _, err := Synthesize(fakeClassifier{}); err == nil {
		t.Fatal("accepted unknown classifier type")
	}
	if _, err := SynthesizeBayes(bayes.New(), 1, 0); err == nil {
		t.Fatal("accepted bad bayes dimensions")
	}
}

type fakeClassifier struct{}

func (fakeClassifier) Name() string                        { return "fake" }
func (fakeClassifier) Train([][]float64, []int, int) error { return nil }
func (fakeClassifier) Predict([]float64) int               { return 0 }

func TestStorageArea(t *testing.T) {
	if a := StorageArea(0); a != (Area{}) {
		t.Fatal("zero storage has area")
	}
	if a := StorageArea(640); a.BRAM != 0 || a.LUT != 10 {
		t.Fatalf("small storage %+v, want 10 LUTRAM", a)
	}
	if a := StorageArea(40000); a.BRAM != 2 {
		t.Fatalf("40kbit storage %+v, want 2 BRAM", a)
	}
}

// Property: any schedule returned validates against its design and
// budget, and bigger budgets never slow the design down.
func TestScheduleMonotoneProperty(t *testing.T) {
	f := func(seed uint16) bool {
		// Random layered DAG.
		n := int(seed%30) + 5
		d := NewDesign("p")
		for i := 0; i < n; i++ {
			var deps []int
			if i > 0 && i%3 != 0 {
				deps = append(deps, (i*7)%i)
			}
			kind := OpKind(int(seed+uint16(i)) % int(numOpKinds))
			d.AddOp(kind, deps...)
		}
		tight := Budget{}
		loose := Budget{}
		for k := OpKind(0); k < numOpKinds; k++ {
			tight[k] = 1
			loose[k] = 4
		}
		st, err := ScheduleDesign(d, tight)
		if err != nil || st.Validate(d, tight) != nil {
			return false
		}
		sl, err := ScheduleDesign(d, loose)
		if err != nil || sl.Validate(d, loose) != nil {
			return false
		}
		return sl.Cycles <= st.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLowerKNNCost(t *testing.T) {
	// A 5,000-exemplar, 16-feature KNN (a small fraction of the paper's
	// ~34k training rows): exemplar memory alone should dwarf every other
	// classifier in this repository.
	d, budget := LowerKNN(5000, 16, 5)
	rep, err := reportFor(d, budget)
	if err != nil {
		t.Fatal(err)
	}
	// 5000*16*32 bits ≈ 2.5 Mbit ≈ 70 BRAMs.
	if rep.Area.BRAM < 50 {
		t.Fatalf("KNN exemplar memory only %d BRAMs", rep.Area.BRAM)
	}
	// Latency streams all exemplars: thousands of cycles.
	if rep.Cycles < 500 {
		t.Fatalf("KNN latency %d cycles implausibly low", rep.Cycles)
	}
	// Contrast with the MLP, the previously-largest model.
	mlpD, mlpB := LowerMLP(16, 11, 2)
	mlpRep, err := reportFor(mlpD, mlpB)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EquivLUTs < 2*mlpRep.EquivLUTs {
		t.Fatalf("KNN area %d not ≫ MLP %d", rep.EquivLUTs, mlpRep.EquivLUTs)
	}
}

func TestUtilizationReport(t *testing.T) {
	r := &Report{
		Classifier:  "J48",
		Area:        Area{LUT: 1000, FF: 500, DSP: 2, BRAM: 1},
		Cycles:      13,
		LatencyNs:   130,
		StorageBits: 4096,
	}
	var buf bytes.Buffer
	if err := r.WriteUtilization(&buf, Artix7_35T); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"xc7a35t", "Slice LUTs", "DSP48E1", "4.81%", "13 cycles"} {
		if !strings.Contains(out, want) {
			t.Fatalf("utilization report missing %q:\n%s", want, out)
		}
	}
	if !r.Fits(Artix7_35T) {
		t.Fatal("small design does not fit a 35T")
	}
	big := &Report{Area: Area{DSP: 1000}}
	if big.Fits(Artix7_35T) {
		t.Fatal("1000-DSP design claims to fit a 90-DSP part")
	}
	if !big.Fits(Kintex7_325T) == (big.Area.DSP <= Kintex7_325T.DSP) {
		t.Fatal("Fits inconsistent")
	}
}

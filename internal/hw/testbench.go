package hw

import (
	"fmt"
	"io"
	"strings"
)

// EmitTestbench writes a self-checking Verilog testbench for the netlist:
// each vector drives the feature bus with quantized inputs and compares
// the DUT's label against the expected label computed by the bit-exact Go
// evaluator. Simulation prints PASS/FAIL per vector and a final summary,
// so `iverilog detector.v detector_tb.v && ./a.out` verifies the emitted
// hardware with no additional tooling.
func (c *Comb) EmitTestbench(w io.Writer, vectors [][]float64) error {
	if len(c.nodes) == 0 {
		return fmt.Errorf("hw: empty netlist")
	}
	if len(vectors) == 0 {
		return fmt.Errorf("hw: no test vectors")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "// Self-checking testbench for %s — %d vectors\n", c.name, len(vectors))
	fmt.Fprintf(&b, "`timescale 1ns/1ps\n")
	fmt.Fprintf(&b, "module %s_tb;\n", c.name)
	fmt.Fprintf(&b, "  reg  [%d:0] features;\n", 32*c.nInputs-1)
	fmt.Fprintf(&b, "  wire [7:0] label;\n")
	fmt.Fprintf(&b, "  integer errors = 0;\n\n")
	fmt.Fprintf(&b, "  %s dut (.features(features), .label(label));\n\n", c.name)
	fmt.Fprintf(&b, "  task check(input [7:0] expected, input integer idx);\n")
	fmt.Fprintf(&b, "    begin\n")
	fmt.Fprintf(&b, "      #1;\n")
	fmt.Fprintf(&b, "      if (label !== expected) begin\n")
	fmt.Fprintf(&b, "        $display(\"FAIL vector %%0d: got %%0d want %%0d\", idx, label, expected);\n")
	fmt.Fprintf(&b, "        errors = errors + 1;\n")
	fmt.Fprintf(&b, "      end\n")
	fmt.Fprintf(&b, "    end\n")
	fmt.Fprintf(&b, "  endtask\n\n")
	fmt.Fprintf(&b, "  initial begin\n")
	for i, vec := range vectors {
		if len(vec) != c.nInputs {
			return fmt.Errorf("hw: vector %d has %d features, want %d", i, len(vec), c.nInputs)
		}
		expected, err := c.Eval(vec)
		if err != nil {
			return err
		}
		// Pack features LSB-first as the module expects.
		fmt.Fprintf(&b, "    features = {")
		for j := c.nInputs - 1; j >= 0; j-- {
			q := uint32(ToFixed(vec[j], c.shift))
			fmt.Fprintf(&b, "32'h%08x", q)
			if j > 0 {
				fmt.Fprintf(&b, ", ")
			}
		}
		fmt.Fprintf(&b, "};\n")
		fmt.Fprintf(&b, "    check(8'd%d, %d);\n", expected&0xff, i)
	}
	fmt.Fprintf(&b, "    if (errors == 0) $display(\"PASS: %d vectors\");\n", len(vectors))
	fmt.Fprintf(&b, "    else $display(\"FAIL: %%0d errors\", errors);\n")
	fmt.Fprintf(&b, "    $finish;\n")
	fmt.Fprintf(&b, "  end\n")
	fmt.Fprintf(&b, "endmodule\n")
	_, err := io.WriteString(w, b.String())
	return err
}

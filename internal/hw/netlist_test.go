package hw

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/ml/linear"
	"repro/internal/ml/mltest"
	"repro/internal/ml/oner"
	"repro/internal/ml/rules"
	"repro/internal/ml/tree"
)

func TestFixedPointRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1, -1, 3.5, -100.25, 32767.9} {
		got := FromFixed(ToFixed(v, FixedShift), FixedShift)
		if math.Abs(got-v) > 1.0/(1<<FixedShift) {
			t.Fatalf("fixed round trip %v -> %v", v, got)
		}
	}
	// Saturation.
	if ToFixed(1e12, FixedShift) != math.MaxInt32 || ToFixed(-1e12, FixedShift) != math.MinInt32 {
		t.Fatal("fixed conversion does not saturate")
	}
	// Integer datapath: large counts survive at shift 0.
	if got := FromFixed(ToFixed(3.3e7, 0), 0); math.Abs(got-3.3e7) > 0.5 {
		t.Fatalf("integer datapath lost a count value: %v", got)
	}
}

func TestCombEvalBasics(t *testing.T) {
	c := NewComb("t", 2)
	// label = x0 <= 5 ? 1 : 0
	sel := c.LE(c.Input(0), c.Const(5))
	c.SetOutput(c.Mux(sel, c.Label(1), c.Label(0)))
	if v, err := c.Eval([]float64{3, 0}); err != nil || v != 1 {
		t.Fatalf("Eval(3) = %d, %v", v, err)
	}
	if v, _ := c.Eval([]float64{7, 0}); v != 0 {
		t.Fatalf("Eval(7) = %d", v)
	}
	// Boundary: 5 <= 5.
	if v, _ := c.Eval([]float64{5, 0}); v != 1 {
		t.Fatalf("Eval(5) = %d", v)
	}
	if _, err := c.Eval([]float64{1}); err == nil {
		t.Fatal("accepted wrong feature count")
	}
}

func TestCombGuards(t *testing.T) {
	c := NewComb("t", 1)
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		f()
	}
	mustPanic(func() { c.Input(3) })
	mustPanic(func() { c.LE(Net(99), Net(0)) })
	mustPanic(func() { c.Mux(c.Const(1), c.Const(2), c.Const(3)) }) // non-bool select
}

// quantAgreement trains a model, compiles it, and checks the netlist's
// fixed-point predictions against the float model.
func quantAgreement(t *testing.T, predict func([]float64) int, c *Comb, x [][]float64) {
	t.Helper()
	agree := 0
	for _, row := range x {
		want := predict(row)
		got, err := c.Eval(row)
		if err != nil {
			t.Fatal(err)
		}
		if got == want {
			agree++
		}
	}
	frac := float64(agree) / float64(len(x))
	if frac < 0.98 {
		t.Fatalf("netlist agrees with model on only %.1f%% of rows", frac*100)
	}
}

func TestCompileOneRMatchesModel(t *testing.T) {
	x, y := mltest.Blobs(1, [][]float64{{0, 0}, {5, 1}, {10, 2}}, 150, 0.6)
	o := oner.New()
	if err := o.Train(x, y, 3); err != nil {
		t.Fatal(err)
	}
	c, err := CompileOneR(o, 2)
	if err != nil {
		t.Fatal(err)
	}
	quantAgreement(t, o.Predict, c, x)
}

func TestCompileTreeMatchesModel(t *testing.T) {
	x, y := mltest.XOR(2, 200)
	j := tree.NewJ48()
	if err := j.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	c, err := CompileTree(j, 2)
	if err != nil {
		t.Fatal(err)
	}
	quantAgreement(t, j.Predict, c, x)

	// REPTree path too.
	r := tree.NewREPTree()
	if err := r.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	cr, err := CompileTree(r, 2)
	if err != nil {
		t.Fatal(err)
	}
	quantAgreement(t, r.Predict, cr, x)
}

func TestCompileJRipMatchesModel(t *testing.T) {
	x, y := mltest.ThreeBlobs(3, 200)
	j := rules.New()
	if err := j.Train(x, y, 3); err != nil {
		t.Fatal(err)
	}
	c, err := CompileJRip(j, 4)
	if err != nil {
		t.Fatal(err)
	}
	quantAgreement(t, j.Predict, c, x)
}

func TestEmitVerilogStructure(t *testing.T) {
	x, y := mltest.TwoBlobs(5, 150)
	j := tree.NewJ48()
	if err := j.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	c, err := CompileTree(j, 2)
	if err != nil {
		t.Fatal(err)
	}
	c.SetName("hpc_detector")
	var buf bytes.Buffer
	if err := c.EmitVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	for _, want := range []string{
		"module hpc_detector (",
		"endmodule",
		"output wire [7:0] label",
		"input  wire signed [63:0] features", // 2 x 32-bit bus
		"assign label =",
	} {
		if !strings.Contains(v, want) {
			t.Fatalf("verilog missing %q:\n%s", want, v[:min(len(v), 400)])
		}
	}
	// One comparator line per internal tree node.
	cmpLines := strings.Count(v, "<=")
	internal := j.Size() - j.Leaves()
	// Each internal node contributes exactly one "(nA <= nB)" line; the
	// port list has no <=.
	if cmpLines != internal {
		t.Fatalf("verilog has %d comparators, tree has %d internal nodes", cmpLines, internal)
	}
	// Balanced module/endmodule.
	if strings.Count(v, "module ") != strings.Count(v, "endmodule") {
		t.Fatal("unbalanced module/endmodule")
	}
}

func TestEmitVerilogNegativeConstants(t *testing.T) {
	c := NewComb("neg", 1)
	sel := c.LE(c.Input(0), c.Const(-2.5))
	c.SetOutput(c.Mux(sel, c.Label(1), c.Label(0)))
	var buf bytes.Buffer
	if err := c.EmitVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "-64'sd163840") { // -2.5 * 65536
		t.Fatalf("negative constant misrendered:\n%s", buf.String())
	}
}

func TestEmitVerilogEmpty(t *testing.T) {
	if err := NewComb("e", 1).EmitVerilog(&bytes.Buffer{}); err == nil {
		t.Fatal("accepted empty netlist")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestEmitTestbench(t *testing.T) {
	x, y := mltest.TwoBlobs(7, 100)
	j := tree.NewJ48()
	if err := j.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	c, err := CompileTree(j, 2)
	if err != nil {
		t.Fatal(err)
	}
	c.SetName("tb_detector")
	var buf bytes.Buffer
	if err := c.EmitTestbench(&buf, x[:10]); err != nil {
		t.Fatal(err)
	}
	tb := buf.String()
	for _, want := range []string{
		"module tb_detector_tb;",
		"tb_detector dut (.features(features), .label(label));",
		"check(8'd",
		"PASS: 10 vectors",
		"$finish;",
	} {
		if !strings.Contains(tb, want) {
			t.Fatalf("testbench missing %q", want)
		}
	}
	// One check per vector.
	if got := strings.Count(tb, "check(8'd"); got != 10 {
		t.Fatalf("%d checks, want 10", got)
	}
	// Expected labels must match the Go evaluator.
	for i := 0; i < 10; i++ {
		want, err := c.Eval(x[i])
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(tb, fmt.Sprintf("check(8'd%d, %d);", want, i)) {
			t.Fatalf("vector %d expected label %d not in testbench", i, want)
		}
	}
	// Errors.
	if err := c.EmitTestbench(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("accepted empty vector set")
	}
	if err := c.EmitTestbench(&bytes.Buffer{}, [][]float64{{1}}); err == nil {
		t.Fatal("accepted wrong-width vector")
	}
}

func TestCriticalPathNs(t *testing.T) {
	// Chain: cmp -> mux -> mux. Path = 2.4 + 0.9 + 0.9 = 4.2 ns.
	c := NewComb("t", 1)
	in := c.Input(0)
	cmp := c.LE(in, c.Const(1))
	m1 := c.Mux(cmp, c.Label(1), c.Label(0))
	m2 := c.Mux(cmp, m1, c.Label(2))
	c.SetOutput(m2)
	ns, fmax := c.CriticalPathNs()
	if math.Abs(ns-4.2) > 1e-9 {
		t.Fatalf("critical path %v ns, want 4.2", ns)
	}
	if math.Abs(fmax-1000/4.2) > 1e-6 {
		t.Fatalf("fmax %v", fmax)
	}
	// Deeper netlists are slower.
	x, y := mltest.XOR(9, 200)
	j := tree.NewJ48()
	if err := j.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	comb, err := CompileTree(j, 2)
	if err != nil {
		t.Fatal(err)
	}
	treeNs, treeFmax := comb.CriticalPathNs()
	if treeNs <= 0 || treeFmax <= 0 {
		t.Fatalf("tree path %v ns fmax %v", treeNs, treeFmax)
	}
}

func TestCompileLinearMatchesLogistic(t *testing.T) {
	x, y := mltest.ThreeBlobs(11, 300)
	// Count-like scales to exercise the standardization folding.
	for i := range x {
		x[i][0] = x[i][0]*1e5 + 5e5
		x[i][1] = x[i][1]*1e3 + 2e4
	}
	lg := linear.NewLogistic()
	if err := lg.Train(x, y, 3); err != nil {
		t.Fatal(err)
	}
	c, err := CompileLinear("mlr_detector", lg, 4)
	if err != nil {
		t.Fatal(err)
	}
	quantAgreement(t, lg.Predict, c, x)

	// Verilog emission works and contains multiplies.
	var buf bytes.Buffer
	if err := c.EmitVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), " * ") {
		t.Fatal("linear Verilog has no multipliers")
	}
	// Critical path includes multiplier delay.
	if ns, _ := c.CriticalPathNs(); ns < 6 {
		t.Fatalf("linear critical path %v ns implausibly short", ns)
	}
}

func TestCompileLinearMatchesSVM(t *testing.T) {
	x, y := mltest.TwoBlobs(12, 200)
	sv := linear.NewSVM()
	if err := sv.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	c, err := CompileLinear("svm_detector", sv, 2)
	if err != nil {
		t.Fatal(err)
	}
	quantAgreement(t, sv.Predict, c, x)
}

func TestCompileLinearShapeErrors(t *testing.T) {
	lg := linear.NewLogistic()
	x, y := mltest.TwoBlobs(13, 60)
	if err := lg.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := CompileLinear("bad", lg, 5); err == nil {
		t.Fatal("accepted wrong feature count")
	}
}

package hw

import "testing"

func BenchmarkScheduleMLPDesign(b *testing.B) {
	d, budget := LowerMLP(16, 11, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ScheduleDesign(d, budget); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleTreeDesign(b *testing.B) {
	d, budget := LowerTree("J48", 201, 101, 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ScheduleDesign(d, budget); err != nil {
			b.Fatal(err)
		}
	}
}

package hw

// Quantized datapath widths shared between the hardware lowering and the
// software quantized-inference programs (internal/infer). The FPGA
// datapaths this package emits carry features as signed fixed-point words
// (FixedShift), weights at WeightShift fractional bits, and scores on a
// 64-bit spine; the quantized software programs mirror the same widths so
// their label decisions predict what a synthesized detector would compute:
// an int8 program accumulates into 32-bit registers, an int16 program into
// the same 64-bit score width the netlist evaluator uses.
const (
	// ScoreBits is the comparison/score spine width of the emitted
	// datapaths (see netlist.go: scores and folded biases ride int64).
	ScoreBits = 64

	// Int8 profile: 8-bit activations and weights, 32-bit accumulators.
	// dim·(2^7)·(2^7) products stay far inside 32 bits for any feature
	// count this system meets, matching a DSP-free 32-bit adder tree.
	Int8WeightBits = 8
	Int8ActBits    = 8
	Int8AccumBits  = 32

	// Int16 profile: 16-bit activations and weights, 64-bit accumulators —
	// the product grid 2^15·2^15 forces accumulation onto the ScoreBits
	// spine, exactly where the netlist's MulConst results land.
	Int16WeightBits = 16
	Int16ActBits    = 16
	Int16AccumBits  = 64
)

// QuantHalf returns the symmetric signed range limit of a bits-wide
// quantized lane: codes occupy [-QuantHalf, +QuantHalf], e.g. ±127 for
// int8. The symmetric grid (rather than the full two's-complement range)
// keeps negation closed, which the folded-weight kernels rely on.
func QuantHalf(bits int) int64 {
	return 1<<(bits-1) - 1
}

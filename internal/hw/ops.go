// Package hw models the paper's Vivado-HLS hardware implementation step:
// each trained classifier is lowered to a dataflow graph of hardware
// operators, a resource-constrained list scheduler assigns clock cycles,
// and an area model (calibrated to Xilinx 7-series primitives) produces
// LUT/FF/DSP/BRAM counts. The paper's Figures 14-16 compare classifiers
// by exactly these outputs: area, latency, and accuracy per area.
//
// Absolute numbers from a structural model will not match a specific
// Vivado run, but the *relations* the paper reports — OneR/JRip tiny,
// trees shallow, MLP orders of magnitude larger — are preserved because
// they are properties of the model topologies, not of the tool.
package hw

import "fmt"

// OpKind enumerates the hardware operator library.
type OpKind int

// Operator kinds.
const (
	// OpCmp is a 32-bit fixed-point comparator.
	OpCmp OpKind = iota
	// OpAdd is a 32-bit adder.
	OpAdd
	// OpMul is a 32-bit fixed-point multiplier (DSP48-based).
	OpMul
	// OpMAC is a multiply-accumulate (DSP48 in MACC mode).
	OpMAC
	// OpSigmoid is a piecewise-linear sigmoid/exp lookup unit (BRAM).
	OpSigmoid
	// OpMux is a 2:1 32-bit multiplexer (decision-tree leaf steering).
	OpMux
	// OpEnc is a priority encoder stage (rule lists, argmax).
	OpEnc
	// OpAnd is a wide AND reduction stage (rule conjunction).
	OpAnd
	numOpKinds
)

// String returns the operator mnemonic.
func (k OpKind) String() string {
	switch k {
	case OpCmp:
		return "cmp32"
	case OpAdd:
		return "add32"
	case OpMul:
		return "mul32"
	case OpMAC:
		return "mac32"
	case OpSigmoid:
		return "sigmoid"
	case OpMux:
		return "mux32"
	case OpEnc:
		return "prienc"
	case OpAnd:
		return "andred"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Spec is the per-instance cost of one operator: 7-series resource counts
// and pipeline latency in cycles at the target clock.
type Spec struct {
	LUT, FF, DSP, BRAM int
	Latency            int
}

// specs is the operator library. Values follow common 7-series synthesis
// results for 32-bit fixed-point datapaths at ~100 MHz.
var specs = [numOpKinds]Spec{
	OpCmp: {LUT: 16, FF: 8, Latency: 1},
	OpAdd: {LUT: 32, FF: 32, Latency: 1},
	OpMul: {DSP: 3, FF: 64, LUT: 20, Latency: 3},
	// MACC-mode accumulation achieves II=1: one new term per cycle.
	OpMAC:     {DSP: 3, FF: 64, LUT: 24, Latency: 1},
	OpSigmoid: {BRAM: 1, LUT: 40, FF: 32, Latency: 2},
	OpMux:     {LUT: 16, FF: 0, Latency: 1},
	OpEnc:     {LUT: 8, FF: 4, Latency: 1},
	OpAnd:     {LUT: 4, FF: 2, Latency: 1},
}

// SpecFor returns the cost spec of an operator kind.
func SpecFor(k OpKind) Spec {
	if k < 0 || k >= numOpKinds {
		panic(fmt.Sprintf("hw: unknown op kind %d", int(k)))
	}
	return specs[k]
}

// LUT-equivalence factors for the single scalar "area" the paper's
// Figure 14 plots: a DSP48 slice is commonly equated to ~100 logic LUTs
// and a BRAM36 to ~300.
const (
	LUTPerDSP  = 100
	LUTPerBRAM = 300
	// FFs share slices with LUTs; weight them at half a LUT.
	lutPerFFx2 = 1
)

// Area is an FPGA resource vector.
type Area struct {
	LUT, FF, DSP, BRAM int
}

// Add accumulates another area vector.
func (a *Area) Add(b Area) {
	a.LUT += b.LUT
	a.FF += b.FF
	a.DSP += b.DSP
	a.BRAM += b.BRAM
}

// Scale returns the area multiplied by n instances.
func (a Area) Scale(n int) Area {
	return Area{LUT: a.LUT * n, FF: a.FF * n, DSP: a.DSP * n, BRAM: a.BRAM * n}
}

// EquivalentLUTs collapses the vector to a single LUT-equivalent count.
func (a Area) EquivalentLUTs() int {
	return a.LUT + a.FF*lutPerFFx2/2 + a.DSP*LUTPerDSP + a.BRAM*LUTPerBRAM
}

// AreaOf returns the Area of one operator instance.
func AreaOf(k OpKind) Area {
	s := SpecFor(k)
	return Area{LUT: s.LUT, FF: s.FF, DSP: s.DSP, BRAM: s.BRAM}
}

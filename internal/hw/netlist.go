package hw

import (
	"fmt"
	"math"
)

// This file implements the code-generation half of the hardware flow: a
// trained threshold classifier (OneR, J48/REPTree, JRip) is compiled to a
// small combinational netlist IR with two backends — synthesizable
// Verilog, and a bit-exact Go evaluator used by tests to prove that the
// emitted hardware computes the same labels as the trained model (up to
// fixed-point quantization).
//
// Datapath convention: features enter as signed fixed point in 32-bit
// words; labels leave as a small unsigned integer. The binary point is a
// property of the netlist: Q16.16 (FixedShift) suits unit-scale data,
// while raw HPC counts (integers up to ~10^8 per window) use shift 0.

// FixedShift is the default fractional bit count (Q16.16).
const FixedShift = 16

// ToFixed quantizes a float to the given fixed-point grid, saturating at
// the 32-bit signed range.
func ToFixed(v float64, shift uint) int32 {
	s := math.Round(v * float64(int64(1)<<shift))
	if s > math.MaxInt32 {
		return math.MaxInt32
	}
	if s < math.MinInt32 {
		return math.MinInt32
	}
	return int32(s)
}

// FromFixed converts a fixed-point value back to float.
func FromFixed(v int32, shift uint) float64 {
	return float64(v) / float64(int64(1)<<shift)
}

// Net identifies a value in a Comb netlist.
type Net int

type combKind int

const (
	cInput   combKind = iota // word: feature input
	cConst                   // word: constant (stored as float, quantized late)
	cLE                      // bool: a <= b
	cAnd                     // bool: a & b
	cNot                     // bool: !a
	cMux                     // word: sel ? a : b
	cLabel                   // word: constant label value
	cMulC                    // word64: a * quantized-constant weight
	cAdd                     // word64: a + b
	cConst64                 // word64: raw constant
)

type combNode struct {
	kind    combKind
	a, b, c Net     // operands (meaning depends on kind)
	val     int32   // input index / label value
	v64     int64   // raw 64-bit constant (cConst64)
	f       float64 // constant value (cConst / cMulC weight)
	isBool  bool
}

// Comb is a combinational netlist over fixed-point words and 1-bit nets.
type Comb struct {
	name    string
	nInputs int
	shift   uint
	nodes   []combNode
	out     Net
}

// NewComb creates a netlist with the given module name and input count,
// using the default Q16.16 datapath.
func NewComb(name string, inputs int) *Comb {
	return &Comb{name: name, nInputs: inputs, shift: FixedShift}
}

// SetFixedShift changes the binary point of the datapath (0 = integer
// datapath, for raw event counts). Constants are quantized lazily, so
// this may be called at any time before Eval/EmitVerilog.
func (c *Comb) SetFixedShift(shift uint) {
	if shift > 30 {
		panic("hw: fixed shift too large for 32-bit words")
	}
	c.shift = shift
}

// Shift returns the current binary point.
func (c *Comb) Shift() uint { return c.shift }

func (c *Comb) add(n combNode) Net {
	c.nodes = append(c.nodes, n)
	return Net(len(c.nodes) - 1)
}

func (c *Comb) checkNet(n Net) {
	if int(n) < 0 || int(n) >= len(c.nodes) {
		panic(fmt.Sprintf("hw: net %d out of range", n))
	}
}

// Input references feature i.
func (c *Comb) Input(i int) Net {
	if i < 0 || i >= c.nInputs {
		panic(fmt.Sprintf("hw: input %d out of range (%d inputs)", i, c.nInputs))
	}
	return c.add(combNode{kind: cInput, val: int32(i)})
}

// Const introduces a fixed-point constant from a float.
func (c *Comb) Const(v float64) Net {
	return c.add(combNode{kind: cConst, f: v})
}

// Label introduces a class-label constant.
func (c *Comb) Label(v int) Net {
	return c.add(combNode{kind: cLabel, val: int32(v)})
}

// LE yields the boolean a <= b.
func (c *Comb) LE(a, b Net) Net {
	c.checkNet(a)
	c.checkNet(b)
	return c.add(combNode{kind: cLE, a: a, b: b, isBool: true})
}

// And yields a & b.
func (c *Comb) And(a, b Net) Net {
	c.checkNet(a)
	c.checkNet(b)
	return c.add(combNode{kind: cAnd, a: a, b: b, isBool: true})
}

// Not yields !a.
func (c *Comb) Not(a Net) Net {
	c.checkNet(a)
	return c.add(combNode{kind: cNot, a: a, isBool: true})
}

// Mux yields sel ? a : b over word nets.
func (c *Comb) Mux(sel, a, b Net) Net {
	c.checkNet(sel)
	c.checkNet(a)
	c.checkNet(b)
	if !c.nodes[sel].isBool {
		panic("hw: mux select must be boolean")
	}
	return c.add(combNode{kind: cMux, a: sel, b: a, c: b})
}

// SetOutput designates the label output net.
func (c *Comb) SetOutput(n Net) {
	c.checkNet(n)
	c.out = n
}

// NumNodes returns the netlist size.
func (c *Comb) NumNodes() int { return len(c.nodes) }

// Eval computes the label for one raw feature vector using the same
// fixed-point arithmetic the Verilog performs.
func (c *Comb) Eval(features []float64) (int, error) {
	if len(features) != c.nInputs {
		return 0, fmt.Errorf("hw: %d features for %d inputs", len(features), c.nInputs)
	}
	vals := make([]int64, len(c.nodes))
	for i, n := range c.nodes {
		switch n.kind {
		case cInput:
			vals[i] = int64(ToFixed(features[n.val], c.shift))
		case cConst:
			vals[i] = int64(ToFixed(n.f, c.shift))
		case cLabel:
			vals[i] = int64(n.val)
		case cLE:
			if vals[n.a] <= vals[n.b] {
				vals[i] = 1
			}
		case cAnd:
			vals[i] = vals[n.a] & vals[n.b]
		case cNot:
			vals[i] = 1 - (vals[n.a] & 1)
		case cMux:
			if vals[n.a] != 0 {
				vals[i] = vals[n.b]
			} else {
				vals[i] = vals[n.c]
			}
		case cMulC:
			vals[i] = vals[n.a] * quantWeight(n.f)
		case cAdd:
			vals[i] = vals[n.a] + vals[n.b]
		case cConst64:
			vals[i] = n.v64
		default:
			return 0, fmt.Errorf("hw: unknown node kind %d", n.kind)
		}
	}
	return int(vals[c.out]), nil
}

// Combinational delay per operator in nanoseconds on a mid-speed-grade
// 7-series fabric (LUT+route estimates): comparators and adders are
// carry-chain limited; muxes and gates are a LUT hop.
func combDelayNs(k combKind) float64 {
	switch k {
	case cLE:
		return 2.4 // 32-bit compare carry chain
	case cMux:
		return 0.9
	case cAnd, cNot:
		return 0.6
	case cMulC:
		return 6.5 // DSP48 multiply, combinational estimate
	case cAdd:
		return 2.6 // 64-bit carry chain
	default:
		return 0 // inputs/constants are registers/wires
	}
}

// CriticalPathNs returns the longest combinational path through the
// netlist in nanoseconds, and the implied maximum clock frequency in MHz
// for a single-cycle (fully combinational) implementation.
func (c *Comb) CriticalPathNs() (ns float64, fmaxMHz float64) {
	arrive := make([]float64, len(c.nodes))
	worst := 0.0
	for i, n := range c.nodes {
		start := 0.0
		for _, dep := range []Net{n.a, n.b, n.c} {
			if dep > 0 || (dep == 0 && i > 0 && (n.kind == cLE || n.kind == cAnd ||
				n.kind == cNot || n.kind == cMux)) {
				if int(dep) < i && arrive[dep] > start {
					start = arrive[dep]
				}
			}
		}
		arrive[i] = start + combDelayNs(n.kind)
		if arrive[i] > worst {
			worst = arrive[i]
		}
	}
	if worst <= 0 {
		return 0, 0
	}
	return worst, 1000 / worst
}

// MulConst yields a * weight on the 64-bit score datapath: the float
// weight is quantized once at WeightShift fractional bits at build time
// (independent of the input shift — argmax consumers only compare scores,
// so a common scale factor cancels).
func (c *Comb) MulConst(a Net, weight float64) Net {
	c.checkNet(a)
	return c.add(combNode{kind: cMulC, a: a, f: weight})
}

// Add yields a + b on the 64-bit score datapath.
func (c *Comb) Add(a, b Net) Net {
	c.checkNet(a)
	c.checkNet(b)
	return c.add(combNode{kind: cAdd, a: a, b: b})
}

// ConstRaw introduces a pre-scaled 64-bit score constant (e.g. a folded
// bias already multiplied by the weight scale).
func (c *Comb) ConstRaw(v int64) Net {
	return c.add(combNode{kind: cConst64, v64: v})
}

// WeightShift is the fractional precision of MulConst weights.
const WeightShift = 20

// quantWeight converts a float weight to the WeightShift grid.
func quantWeight(w float64) int64 {
	return int64(math.Round(w * (1 << WeightShift)))
}

package hw

import "fmt"

// Op is one node in a dataflow graph: an operator kind plus the indices of
// the ops whose results it consumes. Dependencies must point at
// earlier-added ops, which keeps every design acyclic by construction.
type Op struct {
	Kind OpKind
	Deps []int
}

// Design is a dataflow graph plus bookkeeping for model storage (weights,
// thresholds) that lives in BRAM/LUTRAM independent of the datapath.
type Design struct {
	Name string
	Ops  []Op
	// StorageBits is the model parameter storage requirement (weights,
	// thresholds, rule constants) in bits.
	StorageBits int
}

// NewDesign returns an empty design.
func NewDesign(name string) *Design {
	return &Design{Name: name}
}

// AddOp appends an operator and returns its node index. It panics if a
// dependency references a not-yet-added node, which would create a cycle.
func (d *Design) AddOp(kind OpKind, deps ...int) int {
	idx := len(d.Ops)
	for _, dep := range deps {
		if dep < 0 || dep >= idx {
			panic(fmt.Sprintf("hw: op %d depends on invalid node %d", idx, dep))
		}
	}
	d.Ops = append(d.Ops, Op{Kind: kind, Deps: append([]int{}, deps...)})
	return idx
}

// AddReduceTree appends a balanced binary reduction over the given inputs
// using the given operator (e.g. an adder tree or AND tree) and returns
// the root node index. A single input is returned unchanged.
func (d *Design) AddReduceTree(kind OpKind, inputs []int) int {
	if len(inputs) == 0 {
		panic("hw: empty reduction")
	}
	level := append([]int{}, inputs...)
	for len(level) > 1 {
		var next []int
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, d.AddOp(kind, level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}

// CountKind returns how many ops of the given kind the design contains.
func (d *Design) CountKind(k OpKind) int {
	n := 0
	for _, op := range d.Ops {
		if op.Kind == k {
			n++
		}
	}
	return n
}

// CriticalPath returns the unconstrained (infinite-resource) latency in
// cycles: the longest dependency chain weighted by operator latencies.
func (d *Design) CriticalPath() int {
	finish := make([]int, len(d.Ops))
	longest := 0
	for i, op := range d.Ops {
		start := 0
		for _, dep := range op.Deps {
			if finish[dep] > start {
				start = finish[dep]
			}
		}
		finish[i] = start + SpecFor(op.Kind).Latency
		if finish[i] > longest {
			longest = finish[i]
		}
	}
	return longest
}

package hw

import (
	"fmt"
	"io"
)

// Device describes an FPGA part's resource capacity, for utilization
// percentages in reports.
type Device struct {
	Name               string
	LUT, FF, DSP, BRAM int
}

// Artix7_35T is the entry-level part the paper's embedded argument aims
// at (XC7A35T: 20,800 LUTs, 41,600 FFs, 90 DSP48s, 50 BRAM36s).
var Artix7_35T = Device{Name: "xc7a35t", LUT: 20800, FF: 41600, DSP: 90, BRAM: 50}

// Kintex7_325T is a mid-range part (XC7K325T).
var Kintex7_325T = Device{Name: "xc7k325t", LUT: 203800, FF: 407600, DSP: 840, BRAM: 445}

// WriteUtilization renders a Vivado-style utilization summary of the
// report against the given device.
func (r *Report) WriteUtilization(w io.Writer, dev Device) error {
	pct := func(used, avail int) string {
		if avail <= 0 {
			return "   n/a"
		}
		return fmt.Sprintf("%5.2f%%", 100*float64(used)/float64(avail))
	}
	rows := []struct {
		name        string
		used, avail int
	}{
		{"Slice LUTs", r.Area.LUT, dev.LUT},
		{"Slice Registers", r.Area.FF, dev.FF},
		{"DSP48E1", r.Area.DSP, dev.DSP},
		{"Block RAM (36Kb)", r.Area.BRAM, dev.BRAM},
	}
	fmt.Fprintf(w, "+--------------------------------------------------------------+\n")
	fmt.Fprintf(w, "| Utilization report — %-18s  target %-10s      |\n", r.Classifier, dev.Name)
	fmt.Fprintf(w, "+---------------------+------------+------------+--------------+\n")
	fmt.Fprintf(w, "| %-19s | %10s | %10s | %12s |\n", "Resource", "Used", "Available", "Utilization")
	fmt.Fprintf(w, "+---------------------+------------+------------+--------------+\n")
	for _, row := range rows {
		fmt.Fprintf(w, "| %-19s | %10d | %10d | %12s |\n",
			row.name, row.used, row.avail, pct(row.used, row.avail))
	}
	fmt.Fprintf(w, "+---------------------+------------+------------+--------------+\n")
	fmt.Fprintf(w, "| Timing: %4d cycles @ %3.0f MHz = %8.0f ns latency           |\n",
		r.Cycles, ClockMHz, r.LatencyNs)
	pw := EstimatePower(r, 1)
	fmt.Fprintf(w, "| Power:  %6.2f mW dynamic + %6.2f mW static                  |\n",
		pw.DynamicMW, pw.StaticMW)
	fmt.Fprintf(w, "| Model storage: %8d bits                                  |\n", r.StorageBits)
	_, err := fmt.Fprintf(w, "+--------------------------------------------------------------+\n")
	return err
}

// Fits reports whether the design fits the device.
func (r *Report) Fits(dev Device) bool {
	return r.Area.LUT <= dev.LUT && r.Area.FF <= dev.FF &&
		r.Area.DSP <= dev.DSP && r.Area.BRAM <= dev.BRAM
}

package hw

import (
	"fmt"
	"math"

	"repro/internal/ml"
	"repro/internal/ml/bayes"
	"repro/internal/ml/linear"
	"repro/internal/ml/mlp"
	"repro/internal/ml/oner"
	"repro/internal/ml/rules"
	"repro/internal/ml/tree"
	"repro/internal/obs"
)

// Synthesis instruments: how many designs the HLS cost model scheduled
// and the total dataflow nodes placed across them.
var (
	mSyntheses      = obs.GetCounter("hw.syntheses")
	mNodesScheduled = obs.GetCounter("hw.nodes_scheduled")
)

// ClockMHz is the synthesis target clock, matching the paper's HLS runs.
const ClockMHz = 100.0

// Report is the hardware implementation summary of one trained
// classifier: the numbers behind the paper's Figures 14 (area), 15
// (latency) and 16 (accuracy/area).
type Report struct {
	Classifier  string
	Area        Area
	EquivLUTs   int
	Cycles      int
	LatencyNs   float64
	StorageBits int
}

// Synthesize lowers a trained classifier to a dataflow design, schedules
// it, and returns the cost report. Supported types are the repository's
// classifiers; anything else returns an error.
func Synthesize(c ml.Classifier) (*Report, error) {
	var (
		d      *Design
		budget Budget
	)
	switch m := c.(type) {
	case *oner.OneR:
		d, budget = LowerOneR(m)
	case *tree.J48:
		d, budget = LowerTree(c.Name(), m.Size(), m.Leaves(), m.Depth())
	case *tree.REPTree:
		d, budget = LowerTree(c.Name(), m.Size(), m.Leaves(), m.Depth())
	case *rules.JRip:
		d, budget = LowerJRip(m)
	case *bayes.NaiveBayes:
		return nil, fmt.Errorf("hw: NaiveBayes synthesis requires dimensions; use SynthesizeBayes")
	case *linear.Logistic:
		w := m.Weights()
		d, budget = LowerDotProductBank(c.Name(), len(w), len(w[0])-1, false)
	case *linear.SVM:
		w := m.Weights()
		d, budget = LowerDotProductBank(c.Name(), len(w), len(w[0])-1, false)
	case *mlp.MLP:
		in, hid, out := m.Topology()
		d, budget = LowerMLP(in, hid, out)
	default:
		return nil, fmt.Errorf("hw: no lowering for classifier %T", c)
	}
	return reportFor(d, budget)
}

// SynthesizeBayes lowers a trained Gaussian Naive Bayes given its
// dimensions (classes, features).
func SynthesizeBayes(nb *bayes.NaiveBayes, numClasses, dim int) (*Report, error) {
	if numClasses < 2 || dim < 1 {
		return nil, fmt.Errorf("hw: bad NaiveBayes dimensions %d classes, %d features", numClasses, dim)
	}
	d, budget := LowerBayes(numClasses, dim)
	return reportFor(d, budget)
}

// reportFor schedules the design and assembles the cost report.
func reportFor(d *Design, budget Budget) (*Report, error) {
	sched, err := ScheduleDesign(d, budget)
	if err != nil {
		return nil, err
	}
	mSyntheses.Inc()
	mNodesScheduled.Add(int64(len(d.Ops)))
	obs.Log().Debug("design scheduled",
		"design", d.Name, "nodes", len(d.Ops), "cycles", sched.Cycles)
	var area Area
	for kind, n := range sched.Used {
		area.Add(AreaOf(kind).Scale(n))
	}
	area.Add(StorageArea(d.StorageBits))
	cyclesNs := float64(sched.Cycles) * 1000 / ClockMHz
	return &Report{
		Classifier:  d.Name,
		Area:        area,
		EquivLUTs:   area.EquivalentLUTs(),
		Cycles:      sched.Cycles,
		LatencyNs:   cyclesNs,
		StorageBits: d.StorageBits,
	}, nil
}

// StorageArea converts model parameter storage to resources: small models
// live in LUTRAM (64 bits/LUT), larger ones occupy BRAM36 blocks.
func StorageArea(bits int) Area {
	if bits <= 0 {
		return Area{}
	}
	if bits <= 4096 {
		return Area{LUT: (bits + 63) / 64}
	}
	return Area{BRAM: (bits + 36863) / 36864}
}

// LowerOneR builds the 1R datapath: the feature is compared against every
// interval threshold in parallel, and a priority-encoder tree selects the
// interval label.
func LowerOneR(o *oner.OneR) (*Design, Budget) {
	d := NewDesign("OneR")
	n := o.NumIntervals()
	if n < 2 {
		// Constant rule: a single encoder stage emitting the label.
		d.AddOp(OpEnc)
		d.StorageBits = 8
		return d, nil
	}
	cmps := make([]int, n-1)
	for i := range cmps {
		cmps[i] = d.AddOp(OpCmp)
	}
	d.AddReduceTree(OpEnc, cmps)
	d.StorageBits = (n-1)*32 + n*8
	return d, nil
}

// LowerTree builds a speculative decision-tree datapath: all internal-node
// comparators fire in parallel, then a mux chain of the tree's depth
// steers the leaf label — the standard pipelined-tree HLS shape.
func LowerTree(name string, size, leaves, depth int) (*Design, Budget) {
	d := NewDesign(name)
	internal := size - leaves
	if internal < 1 {
		d.AddOp(OpEnc)
		d.StorageBits = 8
		return d, nil
	}
	cmps := make([]int, internal)
	for i := range cmps {
		cmps[i] = d.AddOp(OpCmp)
	}
	// Depth levels of leaf steering; each level's mux consumes the
	// previous level and one comparator result.
	prev := d.AddOp(OpMux, cmps[0])
	for lvl := 1; lvl < depth; lvl++ {
		prev = d.AddOp(OpMux, prev, cmps[lvl%len(cmps)])
	}
	// One mux instance per internal node exists in the fabric even though
	// the chain only expresses the critical path; account spatially.
	for i := 0; i < internal-depth; i++ {
		d.AddOp(OpMux, cmps[i%len(cmps)])
	}
	d.StorageBits = size * 48 // threshold + attribute index + label/edge bits
	return d, nil
}

// LowerJRip builds the rule-list datapath: every condition comparator in
// parallel, an AND-reduce tree per rule, then a priority-encoder chain
// through the rule list (first match wins).
func LowerJRip(j *rules.JRip) (*Design, Budget) {
	d := NewDesign("JRip")
	rl := j.Rules()
	if len(rl) == 0 {
		d.AddOp(OpEnc)
		d.StorageBits = 8
		return d, nil
	}
	ruleOuts := make([]int, len(rl))
	conds := 0
	for i, r := range rl {
		cmpNodes := make([]int, len(r.Conds))
		for k := range r.Conds {
			cmpNodes[k] = d.AddOp(OpCmp)
		}
		conds += len(r.Conds)
		ruleOuts[i] = d.AddReduceTree(OpAnd, cmpNodes)
	}
	// Priority chain: encoder i depends on encoder i-1 and rule i.
	prev := d.AddOp(OpEnc, ruleOuts[0])
	for i := 1; i < len(ruleOuts); i++ {
		prev = d.AddOp(OpEnc, prev, ruleOuts[i])
	}
	d.StorageBits = conds*40 + (len(rl)+1)*8
	return d, nil
}

// LowerBayes builds the Gaussian NB datapath: per class and feature,
// (x - mu) is squared and scaled, an adder tree accumulates the log
// densities, and an encoder chain selects the argmax class. Multipliers
// are time-shared at two per class, an HLS-typical partial unroll.
func LowerBayes(numClasses, dim int) (*Design, Budget) {
	d := NewDesign("NaiveBayes")
	var classScores []int
	for c := 0; c < numClasses; c++ {
		terms := make([]int, dim)
		for f := 0; f < dim; f++ {
			sub := d.AddOp(OpAdd)
			sq := d.AddOp(OpMul, sub)
			scaled := d.AddOp(OpMul, sq)
			terms[f] = scaled
		}
		classScores = append(classScores, d.AddReduceTree(OpAdd, terms))
	}
	prev := d.AddOp(OpEnc, classScores[0])
	for c := 1; c < numClasses; c++ {
		prev = d.AddOp(OpEnc, prev, classScores[c])
	}
	d.StorageBits = numClasses * dim * 2 * 32
	return d, Budget{OpMul: 2 * numClasses, OpAdd: 2 * numClasses}
}

// LowerDotProductBank builds the MLR/SVM datapath: one MAC engine per
// class iterates over the feature vector (DSP48 MACC, II=1), then an
// encoder chain selects the argmax margin. withSigmoid appends an
// activation lookup per output (used by the MLP's layers).
func LowerDotProductBank(name string, numOut, dim int, withSigmoid bool) (*Design, Budget) {
	d := NewDesign(name)
	outs := lowerDotLayer(d, numOut, dim, withSigmoid, nil)
	prev := d.AddOp(OpEnc, outs[0])
	for c := 1; c < numOut; c++ {
		prev = d.AddOp(OpEnc, prev, outs[c])
	}
	d.StorageBits = numOut * (dim + 1) * 32
	return d, Budget{OpMAC: numOut}
}

// lowerDotLayer appends numOut MAC accumulation chains of length dim. If
// inputs is non-nil, each chain additionally depends on all inputs
// (layer-to-layer dataflow).
func lowerDotLayer(d *Design, numOut, dim int, withSigmoid bool, inputs []int) []int {
	outs := make([]int, numOut)
	for c := 0; c < numOut; c++ {
		prev := -1
		for f := 0; f < dim; f++ {
			deps := []int{}
			if prev >= 0 {
				deps = append(deps, prev)
			} else if inputs != nil {
				deps = append(deps, inputs...)
			}
			prev = d.AddOp(OpMAC, deps...)
		}
		if withSigmoid {
			prev = d.AddOp(OpSigmoid, prev)
		}
		outs[c] = prev
	}
	return outs
}

// LowerMLP builds the two-layer perceptron datapath: a MAC row per hidden
// neuron with sigmoid lookups, a MAC row per output neuron, and an argmax
// encoder chain — the classic layer-parallel, input-serial neural
// accelerator the paper's HLS flow produces.
func LowerMLP(in, hidden, out int) (*Design, Budget) {
	d := NewDesign("MLP")
	hiddenOuts := lowerDotLayer(d, hidden, in, true, nil)
	outOuts := lowerDotLayer(d, out, hidden, false, hiddenOuts)
	prev := d.AddOp(OpEnc, outOuts[0])
	for c := 1; c < out; c++ {
		prev = d.AddOp(OpEnc, prev, outOuts[c])
	}
	d.StorageBits = (hidden*(in+1) + out*(hidden+1)) * 16
	return d, Budget{OpMAC: hidden + out}
}

// AccuracyPerArea is the paper's Figure 16 figure of merit: test accuracy
// (in percent) divided by kilo-LUT-equivalents.
func AccuracyPerArea(accuracy float64, r *Report) float64 {
	if r.EquivLUTs == 0 {
		return math.Inf(1)
	}
	return accuracy * 100 / (float64(r.EquivLUTs) / 1000)
}

// LowerKNN builds the instance-based datapath of a k-NN classifier: a
// distance engine (one subtract-square MAC pipeline per feature lane,
// P lanes wide), a running top-k selector, and exemplar memory holding the
// entire training set. Latency is dominated by streaming all stored
// exemplars through the engine; area by the exemplar BRAM — the reason
// instance-based learners lose the embedded-deployment comparison.
func LowerKNN(stored, dim, k int) (*Design, Budget) {
	d := NewDesign("KNN")
	const lanes = 8
	// Distance accumulation: stored exemplars stream through `lanes`
	// subtract-square-accumulate pipelines; model the per-exemplar work
	// as ceil(dim/lanes) dependent MAC steps, chained across exemplars on
	// the same lane.
	steps := (dim + lanes - 1) / lanes
	var last [lanes]int
	for i := range last {
		last[i] = -1
	}
	for e := 0; e < stored; e++ {
		lane := e % lanes
		prev := last[lane]
		for s := 0; s < steps; s++ {
			if prev >= 0 {
				prev = d.AddOp(OpMAC, prev)
			} else {
				prev = d.AddOp(OpMAC)
			}
		}
		// Top-k insertion: a comparator against the current k-th best.
		prev = d.AddOp(OpCmp, prev)
		last[lane] = prev
	}
	// Final vote across the k best: encoder tree.
	var tails []int
	for _, t := range last {
		if t >= 0 {
			tails = append(tails, t)
		}
	}
	d.AddReduceTree(OpEnc, tails)
	// Exemplar memory: stored x dim x 32-bit words, plus labels.
	d.StorageBits = stored*dim*32 + stored*8
	_ = k
	return d, Budget{OpMAC: lanes, OpCmp: lanes}
}

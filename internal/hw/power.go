package hw

// Power estimation. The DAC'17 paper (Patel et al.) compares classifiers
// by area, latency *and power*; this file adds the power model: dynamic
// power from per-primitive switching energy at the target clock scaled by
// datapath activity, plus per-primitive static leakage — the standard
// spreadsheet-level FPGA power estimate (Xilinx XPE-style).

// Per-primitive power coefficients at 100 MHz, in microwatts. Dynamic
// values assume a 12.5% default toggle rate; static values are the
// per-primitive share of device leakage.
const (
	dynUWPerLUT  = 2.0
	dynUWPerFF   = 0.6
	dynUWPerDSP  = 180.0
	dynUWPerBRAM = 220.0

	statUWPerLUT  = 0.4
	statUWPerFF   = 0.1
	statUWPerDSP  = 40.0
	statUWPerBRAM = 60.0
)

// PowerReport is the estimated power of one synthesized classifier.
type PowerReport struct {
	// DynamicMW and StaticMW are in milliwatts at the 100 MHz target.
	DynamicMW float64
	StaticMW  float64
	// EnergyPerInferenceNJ is dynamic energy for one classification in
	// nanojoules: dynamic power x latency.
	EnergyPerInferenceNJ float64
}

// TotalMW returns dynamic + static power.
func (p PowerReport) TotalMW() float64 { return p.DynamicMW + p.StaticMW }

// EstimatePower derives the power report from a synthesis report.
// activity is the datapath toggle-rate multiplier relative to the 12.5%
// default (1.0 = default; streaming designs with II=1 approach 2-4x).
func EstimatePower(r *Report, activity float64) PowerReport {
	if activity <= 0 {
		activity = 1
	}
	a := r.Area
	dynUW := activity * (float64(a.LUT)*dynUWPerLUT +
		float64(a.FF)*dynUWPerFF +
		float64(a.DSP)*dynUWPerDSP +
		float64(a.BRAM)*dynUWPerBRAM)
	statUW := float64(a.LUT)*statUWPerLUT +
		float64(a.FF)*statUWPerFF +
		float64(a.DSP)*statUWPerDSP +
		float64(a.BRAM)*statUWPerBRAM
	dynMW := dynUW / 1000
	return PowerReport{
		DynamicMW:            dynMW,
		StaticMW:             statUW / 1000,
		EnergyPerInferenceNJ: dynMW * r.LatencyNs / 1000, // mW x ns = pJ; /1000 = nJ
	}
}

package hw

import (
	"fmt"

	"repro/internal/ml/oner"
	"repro/internal/ml/rules"
	"repro/internal/ml/tree"
)

// CompileOneR builds the 1R netlist: a chain of threshold muxes over the
// selected feature.
func CompileOneR(o *oner.OneR, numFeatures int) (*Comb, error) {
	attr, thresholds, labels := o.Rule()
	if attr >= numFeatures {
		return nil, fmt.Errorf("hw: OneR attribute %d outside %d features", attr, numFeatures)
	}
	c := NewComb("oner_detector", numFeatures)
	x := c.Input(attr)
	// out = v <= t0 ? L0 : (v <= t1 ? L1 : ... : Ln)
	out := c.Label(labels[len(labels)-1])
	for i := len(thresholds) - 1; i >= 0; i-- {
		sel := c.LE(x, c.Const(thresholds[i]))
		out = c.Mux(sel, c.Label(labels[i]), out)
	}
	c.SetOutput(out)
	return c, nil
}

// TreeModel is satisfied by both J48 and REPTree.
type TreeModel interface {
	Export() []tree.ExportedNode
}

// CompileTree builds a decision-tree netlist: one comparator per internal
// node and a mux cascade steering the leaf label upward.
func CompileTree(m TreeModel, numFeatures int) (*Comb, error) {
	nodes := m.Export()
	if len(nodes) == 0 {
		return nil, fmt.Errorf("hw: empty tree export")
	}
	c := NewComb("tree_detector", numFeatures)
	var build func(idx int) (Net, error)
	build = func(idx int) (Net, error) {
		n := nodes[idx]
		if n.Leaf {
			return c.Label(n.Label), nil
		}
		if n.Attr < 0 || n.Attr >= numFeatures {
			return 0, fmt.Errorf("hw: tree node %d attribute %d outside %d features",
				idx, n.Attr, numFeatures)
		}
		sel := c.LE(c.Input(n.Attr), c.Const(n.Thr))
		l, err := build(n.Left)
		if err != nil {
			return 0, err
		}
		r, err := build(n.Right)
		if err != nil {
			return 0, err
		}
		return c.Mux(sel, l, r), nil
	}
	out, err := build(0)
	if err != nil {
		return nil, err
	}
	c.SetOutput(out)
	return c, nil
}

// CompileJRip builds the rule-list netlist: per rule an AND of threshold
// literals, then a priority mux cascade ending at the default label.
func CompileJRip(j *rules.JRip, numFeatures int) (*Comb, error) {
	c := NewComb("jrip_detector", numFeatures)
	rl := j.Rules()
	out := c.Label(j.DefaultLabel())
	// Later rules have lower priority: build cascade from the back.
	for i := len(rl) - 1; i >= 0; i-- {
		r := rl[i]
		if len(r.Conds) == 0 {
			return nil, fmt.Errorf("hw: rule %d has no conditions", i)
		}
		var match Net = -1
		for _, cond := range r.Conds {
			if cond.Attr < 0 || cond.Attr >= numFeatures {
				return nil, fmt.Errorf("hw: rule %d attribute %d outside %d features",
					i, cond.Attr, numFeatures)
			}
			le := c.LE(c.Input(cond.Attr), c.Const(cond.Thr))
			var lit Net
			if cond.Op == 'l' {
				lit = le
			} else {
				lit = c.Not(le)
			}
			if match < 0 {
				match = lit
			} else {
				match = c.And(match, lit)
			}
		}
		out = c.Mux(match, c.Label(r.Label), out)
	}
	c.SetOutput(out)
	return c, nil
}

// LinearModel is satisfied by the linear classifiers (Logistic, SVM):
// per-class weight vectors (bias last) over internally-standardized
// features.
type LinearModel interface {
	Weights() [][]float64
	Scaler() (means, stddevs []float64)
}

// CompileLinear builds the datapath of a linear classifier: the
// standardization is folded into the weights (w' = w/std, b' = b - Σ
// w·mean/std), each class's score is a multiply-add tree over the raw
// features, and an argmax cascade selects the label. Scores ride a 64-bit
// datapath; weights are quantized at WeightShift fractional bits after
// normalizing the largest magnitude, so relative score order — all that
// argmax needs — survives quantization.
func CompileLinear(name string, m LinearModel, numFeatures int) (*Comb, error) {
	w := m.Weights()
	means, stds := m.Scaler()
	if len(w) == 0 || len(means) != numFeatures || len(stds) != numFeatures {
		return nil, fmt.Errorf("hw: linear model shape mismatch (%d classes, %d stats, %d features)",
			len(w), len(means), numFeatures)
	}
	k := len(w)
	folded := make([][]float64, k) // [class][dim], plus bias at end
	maxAbs := 0.0
	for c := 0; c < k; c++ {
		if len(w[c]) != numFeatures+1 {
			return nil, fmt.Errorf("hw: class %d weight vector has %d entries, want %d",
				c, len(w[c]), numFeatures+1)
		}
		fc := make([]float64, numFeatures+1)
		bias := w[c][numFeatures]
		for j := 0; j < numFeatures; j++ {
			fc[j] = w[c][j] / stds[j]
			bias -= w[c][j] * means[j] / stds[j]
			if a := abs(fc[j]); a > maxAbs {
				maxAbs = a
			}
		}
		fc[numFeatures] = bias
		folded[c] = fc
	}
	// Normalize so the largest weight uses the full WeightShift precision
	// without overflowing 64-bit scores (features are ≤ 2^31 raw).
	scale := 1.0
	if maxAbs > 0 {
		scale = 1.0 / maxAbs
	}

	c := NewComb(name, numFeatures)
	c.SetFixedShift(0) // raw-count inputs
	inputs := make([]Net, numFeatures)
	for j := range inputs {
		inputs[j] = c.Input(j)
	}
	scores := make([]Net, k)
	for cls := 0; cls < k; cls++ {
		var terms []Net
		for j := 0; j < numFeatures; j++ {
			wq := folded[cls][j] * scale
			if quantWeight(wq) == 0 {
				continue // weight rounds to zero: no hardware
			}
			terms = append(terms, c.MulConst(inputs[j], wq))
		}
		// Bias rides pre-multiplied by the weight grid.
		terms = append(terms, c.ConstRaw(quantWeight(folded[cls][numFeatures]*scale)))
		sum := terms[0]
		for _, t := range terms[1:] {
			sum = c.Add(sum, t)
		}
		scores[cls] = sum
	}
	// Argmax cascade: carry (bestScore, bestLabel) through LE+Mux pairs.
	bestScore := scores[0]
	bestLabel := c.Label(0)
	for cls := 1; cls < k; cls++ {
		// keep current best when scores[cls] <= bestScore
		keep := c.LE(scores[cls], bestScore)
		bestScore = c.Mux(keep, bestScore, scores[cls])
		bestLabel = c.Mux(keep, bestLabel, c.Label(cls))
	}
	c.SetOutput(bestLabel)
	return c, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Package flightrec is the black-box flight recorder of the observability
// stack: a bounded in-memory ring of the most recent monitored windows,
// predictions, and bus events, plus a metrics snapshot, dumped as one
// self-contained incident JSON file the moment something goes wrong — an
// alarm, a firing alert rule, or a panic.
//
// The point is post-hoc forensics without infinite logging: when a
// hardware malware detector raises an alarm (or quietly decays until an
// alert fires), the operator gets the exact feature vectors, verdicts and
// event sequence leading up to the trigger, stamped with the build and
// run manifest that produced them, in a single file that reproduces the
// moment. Recording costs two mutex-guarded ring writes per window, so it
// stays on in production.
package flightrec

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Registry metric names exported by the Recorder.
const (
	IncidentsMetric = "flightrec.incidents"
	// SuppressedMetric counts TryDump calls skipped by cooldown or the
	// incident cap — visible so "why is there no dump?" is answerable.
	SuppressedMetric = "flightrec.suppressed"
)

// WindowRecord is one monitored window as the recorder saw it.
type WindowRecord struct {
	TimeUnixMS int64  `json:"t_ms"`
	Sample     string `json:"sample,omitempty"`
	Class      string `json:"class,omitempty"`
	Window     int    `json:"window"`
	Predicted  int    `json:"predicted"`
	// Score is the model's malware probability when available, else the
	// 0/1 verdict.
	Score float64 `json:"score"`
	// Values is the window's HPC feature vector.
	Values []float64 `json:"values,omitempty"`
}

// Incident is the dump payload: everything the recorder held when the
// trigger hit.
type Incident struct {
	// Reason names the trigger ("alarm", "alert-fpr-high", "panic", ...).
	Reason     string         `json:"reason"`
	Seq        int            `json:"seq"`
	TimeUnixMS int64          `json:"t_ms"`
	Build      *obs.BuildInfo `json:"build,omitempty"`
	// Manifest is the serving run's manifest (model provenance, baseline,
	// config), embedded so the dump is self-contained.
	Manifest *obs.Manifest  `json:"manifest,omitempty"`
	Windows  []WindowRecord `json:"windows"`
	Events   []obs.Event    `json:"events"`
	// Metrics is the full registry snapshot at dump time.
	Metrics obs.Snapshot `json:"metrics"`
	// History is the recent metric history leading up to the trigger
	// (a tsdb.HistoryDump when serve wires Config.History), so a dump
	// shows the minutes before the incident, not just its instant.
	History any `json:"history,omitempty"`
	// Trace is the request trace coinciding with the trigger (an
	// obs.ReqTraceSnapshot when serve wires Config.Trace), tying the
	// incident to the exact request's stage-by-stage timings.
	Trace any `json:"trace,omitempty"`
	// Profile is the CPU profile nearest the trigger (a
	// profile.CaptureInfo with its top-N summary when serve wires
	// Config.Profile), so a dump names the functions that were hot
	// when the incident began.
	Profile any `json:"profile,omitempty"`
	// Stack is set on panic dumps.
	Stack string `json:"stack,omitempty"`
}

// Config configures a Recorder.
type Config struct {
	// Dir is where incident files land (required for dumps; an empty Dir
	// records but refuses to dump).
	Dir string
	// WindowDepth / EventDepth bound the rings (defaults 256 / 128).
	WindowDepth int
	EventDepth  int
	// Cooldown suppresses dumps closer together than this (default 10s),
	// so an alarm storm produces one incident, not hundreds.
	Cooldown time.Duration
	// MaxIncidents caps files written per process lifetime (default 32).
	MaxIncidents int
	// Registry is snapshotted into dumps and receives the recorder's own
	// metrics (default obs.DefaultRegistry).
	Registry *obs.Registry
	// Manifest, when set, is embedded in every incident.
	Manifest *obs.Manifest
	// History, when set, is called (off-lock, like the metrics snapshot)
	// at dump time and embedded as the incident's pre-trigger history —
	// serve wires it to the tsdb store's RecentHistory.
	History func() any
	// Trace, when set, is called at dump time and embedded as the
	// triggering request trace — serve wires it to the request tracer's
	// most recent tail-kept trace (nil results are omitted).
	Trace func() any
	// Profile, when set, is called at dump time and embedded as the
	// triggering profile — serve wires it to the continuous profiler's
	// latest CPU capture summary (nil results are omitted).
	Profile func() any
}

// Recorder is the bounded black-box recorder. All methods are safe for
// concurrent use and safe on a nil receiver (a nil *Recorder records and
// dumps nothing), so callers can wire it unconditionally.
type Recorder struct {
	mu         sync.Mutex
	cfg        Config
	windows    []WindowRecord
	wNext      int
	wFull      bool
	events     []obs.Event
	eNext      int
	eFull      bool
	seq        int
	lastDump   time.Time
	panicStack string
	mIncident  *obs.Counter
	mSuppress  *obs.Counter
}

// New builds a recorder. Dir may be empty for record-only use (tests,
// dry runs); Dump then returns an error.
func New(cfg Config) *Recorder {
	if cfg.WindowDepth <= 0 {
		cfg.WindowDepth = 256
	}
	if cfg.EventDepth <= 0 {
		cfg.EventDepth = 128
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 10 * time.Second
	}
	if cfg.MaxIncidents <= 0 {
		cfg.MaxIncidents = 32
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.DefaultRegistry
	}
	r := &Recorder{
		cfg:     cfg,
		windows: make([]WindowRecord, cfg.WindowDepth),
		events:  make([]obs.Event, cfg.EventDepth),
	}
	r.mIncident = cfg.Registry.Counter(IncidentsMetric)
	r.mSuppress = cfg.Registry.Counter(SuppressedMetric)
	return r
}

// RecordWindow adds one monitored window to the ring. Values is copied,
// so callers may reuse their buffer.
func (r *Recorder) RecordWindow(w WindowRecord) {
	if r == nil {
		return
	}
	if w.TimeUnixMS == 0 {
		w.TimeUnixMS = time.Now().UnixMilli()
	}
	w.Values = append([]float64(nil), w.Values...)
	r.mu.Lock()
	r.windows[r.wNext] = w
	r.wNext = (r.wNext + 1) % len(r.windows)
	if r.wNext == 0 {
		r.wFull = true
	}
	r.mu.Unlock()
}

// RecordEvent adds one bus event to the ring.
func (r *Recorder) RecordEvent(e obs.Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events[r.eNext] = e
	r.eNext = (r.eNext + 1) % len(r.events)
	if r.eNext == 0 {
		r.eFull = true
	}
	r.mu.Unlock()
}

// ringSlice returns ring contents oldest-first.
func ringSlice[T any](buf []T, next int, full bool) []T {
	if !full {
		return append([]T(nil), buf[:next]...)
	}
	out := make([]T, 0, len(buf))
	out = append(out, buf[next:]...)
	return append(out, buf[:next]...)
}

// Snapshot freezes the recorder's current rings (oldest-first) without
// writing anything — the /debug/flightrecorder payload.
func (r *Recorder) Snapshot() Incident {
	if r == nil {
		return Incident{Reason: "snapshot"}
	}
	r.mu.Lock()
	inc := Incident{
		Reason:     "snapshot",
		Seq:        r.seq,
		TimeUnixMS: time.Now().UnixMilli(),
		Manifest:   r.cfg.Manifest,
		Windows:    ringSlice(r.windows, r.wNext, r.wFull),
		Events:     ringSlice(r.events, r.eNext, r.eFull),
	}
	r.mu.Unlock()
	build := obs.Build()
	inc.Build = &build
	inc.Metrics = r.cfg.Registry.Snapshot()
	if r.cfg.History != nil {
		inc.History = r.cfg.History()
	}
	if r.cfg.Trace != nil {
		inc.Trace = r.cfg.Trace()
	}
	if r.cfg.Profile != nil {
		inc.Profile = r.cfg.Profile()
	}
	return inc
}

// Dump writes an incident file unconditionally (no cooldown, no cap) and
// returns its path.
func (r *Recorder) Dump(reason string) (string, error) {
	if r == nil {
		return "", fmt.Errorf("flightrec: nil recorder")
	}
	if r.cfg.Dir == "" {
		return "", fmt.Errorf("flightrec: no incident directory configured")
	}
	r.mu.Lock()
	r.seq++
	seq := r.seq
	r.lastDump = time.Now()
	inc := Incident{
		Reason:     reason,
		Seq:        seq,
		TimeUnixMS: time.Now().UnixMilli(),
		Manifest:   r.cfg.Manifest,
		Windows:    ringSlice(r.windows, r.wNext, r.wFull),
		Events:     ringSlice(r.events, r.eNext, r.eFull),
		Stack:      r.panicStack,
	}
	r.mu.Unlock()
	build := obs.Build()
	inc.Build = &build
	inc.Metrics = r.cfg.Registry.Snapshot()
	if r.cfg.History != nil {
		inc.History = r.cfg.History()
	}
	if r.cfg.Trace != nil {
		inc.Trace = r.cfg.Trace()
	}
	if r.cfg.Profile != nil {
		inc.Profile = r.cfg.Profile()
	}

	if err := os.MkdirAll(r.cfg.Dir, 0o755); err != nil {
		return "", fmt.Errorf("flightrec: %w", err)
	}
	path := filepath.Join(r.cfg.Dir, fmt.Sprintf("incident-%04d-%s.json", seq, sanitize(reason)))
	data, err := json.MarshalIndent(inc, "", "  ")
	if err != nil {
		return "", fmt.Errorf("flightrec: encoding incident: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", fmt.Errorf("flightrec: %w", err)
	}
	r.mIncident.Inc()
	obs.Log().Warn("flight recorder incident dumped", "reason", reason, "path", path)
	return path, nil
}

// TryDump is Dump behind the cooldown and lifetime cap — the form every
// automatic trigger uses. It returns the written path, or "" when the
// dump was suppressed or failed (errors are logged, not returned, because
// triggers run on hot paths that must not branch on forensics failures).
func (r *Recorder) TryDump(reason string) string {
	if r == nil || r.cfg.Dir == "" {
		return ""
	}
	r.mu.Lock()
	suppressed := r.seq >= r.cfg.MaxIncidents ||
		(!r.lastDump.IsZero() && time.Since(r.lastDump) < r.cfg.Cooldown)
	r.mu.Unlock()
	if suppressed {
		r.mSuppress.Inc()
		return ""
	}
	path, err := r.Dump(reason)
	if err != nil {
		obs.Log().Error("flight recorder dump failed", "reason", reason, "err", err.Error())
		return ""
	}
	return path
}

// sanitize maps a trigger reason onto a filesystem-safe file-name chunk.
func sanitize(s string) string {
	if s == "" {
		return "incident"
	}
	mapped := strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_':
			return c
		case c >= 'A' && c <= 'Z':
			return c + ('a' - 'A')
		default:
			return '-'
		}
	}, s)
	if len(mapped) > 48 {
		mapped = mapped[:48]
	}
	return mapped
}

// Watch subscribes to the bus until ctx is done, recording every event
// into the ring and dumping (via TryDump) when an event's type is in
// triggers. Call it on its own goroutine.
func (r *Recorder) Watch(ctx context.Context, bus *obs.Bus, triggers ...string) {
	if r == nil || bus == nil {
		return
	}
	trig := map[string]bool{}
	for _, t := range triggers {
		trig[t] = true
	}
	sub := bus.Subscribe(64)
	defer sub.Close()
	for {
		select {
		case <-ctx.Done():
			return
		case e, ok := <-sub.Events():
			if !ok {
				return
			}
			r.RecordEvent(e)
			if trig[e.Type] {
				r.TryDump(e.Type)
			}
		}
	}
}

// DumpOnPanic dumps an incident (with the goroutine stack) when the
// calling goroutine is panicking, then re-panics so the crash still
// surfaces. Use as `defer rec.DumpOnPanic()` at the top of serve loops.
// Panic dumps bypass the cooldown — a crash is always worth a file.
func (r *Recorder) DumpOnPanic() {
	if p := recover(); p != nil {
		if r != nil && r.cfg.Dir != "" {
			r.mu.Lock()
			r.panicStack = fmt.Sprintf("panic: %v\n\n%s", p, debug.Stack())
			r.mu.Unlock()
			if _, err := r.Dump("panic"); err != nil {
				obs.Log().Error("flight recorder panic dump failed", "err", err.Error())
			}
		}
		panic(p)
	}
}

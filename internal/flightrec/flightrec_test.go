package flightrec

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func testRecorder(t *testing.T, cfg Config) *Recorder {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	return New(cfg)
}

func TestRecorderRingAndDump(t *testing.T) {
	dir := t.TempDir()
	r := testRecorder(t, Config{Dir: dir, WindowDepth: 4, EventDepth: 2})
	// Overfill the window ring: only the newest 4 survive, oldest-first.
	for i := 0; i < 6; i++ {
		r.RecordWindow(WindowRecord{Window: i, Predicted: i % 2, Score: float64(i) / 10,
			Sample: "rootkit_001", Values: []float64{float64(i), 2}})
	}
	r.RecordEvent(obs.Event{Type: "window", Window: 4})
	r.RecordEvent(obs.Event{Type: "alarm", Window: 5})
	r.RecordEvent(obs.Event{Type: "drift", Window: 5}) // evicts "window"

	path, err := r.Dump("alarm")
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "incident-0001-alarm.json"); path != want {
		t.Fatalf("path = %q, want %q", path, want)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var inc Incident
	if err := json.Unmarshal(data, &inc); err != nil {
		t.Fatal(err)
	}
	if inc.Reason != "alarm" || inc.Seq != 1 || inc.TimeUnixMS == 0 {
		t.Fatalf("incident header = %+v", inc)
	}
	if len(inc.Windows) != 4 || inc.Windows[0].Window != 2 || inc.Windows[3].Window != 5 {
		t.Fatalf("windows = %+v, want [2 3 4 5]", inc.Windows)
	}
	if len(inc.Events) != 2 || inc.Events[0].Type != "alarm" || inc.Events[1].Type != "drift" {
		t.Fatalf("events = %+v", inc.Events)
	}
	if inc.Build == nil || inc.Build.GoVersion == "" {
		t.Fatal("build info missing from incident")
	}
	if inc.Windows[0].Values[0] != 2 {
		t.Fatalf("window values = %v", inc.Windows[0].Values)
	}
}

func TestRecordWindowCopiesValues(t *testing.T) {
	r := testRecorder(t, Config{})
	buf := []float64{1, 2, 3}
	r.RecordWindow(WindowRecord{Window: 0, Values: buf})
	buf[0] = 99 // caller reuses its buffer
	if got := r.Snapshot().Windows[0].Values[0]; got != 1 {
		t.Fatalf("recorded value mutated to %v; Values not copied", got)
	}
}

func TestTryDumpCooldownAndCap(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	r := New(Config{Dir: dir, Cooldown: time.Hour, MaxIncidents: 2, Registry: reg})
	if p := r.TryDump("alarm"); p == "" {
		t.Fatal("first dump suppressed")
	}
	if p := r.TryDump("alarm"); p != "" {
		t.Fatalf("cooldown did not suppress: %q", p)
	}
	if got := reg.Counter(SuppressedMetric).Value(); got != 1 {
		t.Errorf("suppressed counter = %d, want 1", got)
	}

	// With no cooldown the cap still binds.
	r2 := New(Config{Dir: t.TempDir(), Cooldown: time.Nanosecond, MaxIncidents: 2, Registry: obs.NewRegistry()})
	time.Sleep(time.Millisecond)
	r2.TryDump("a")
	time.Sleep(time.Millisecond)
	r2.TryDump("b")
	time.Sleep(time.Millisecond)
	if p := r2.TryDump("c"); p != "" {
		t.Fatalf("cap did not suppress: %q", p)
	}
}

func TestDumpWithoutDir(t *testing.T) {
	r := New(Config{Registry: obs.NewRegistry()})
	if _, err := r.Dump("alarm"); err == nil {
		t.Fatal("dump without a directory did not error")
	}
	if p := r.TryDump("alarm"); p != "" {
		t.Fatalf("TryDump without a directory wrote %q", p)
	}
}

func TestNilRecorderInert(t *testing.T) {
	var r *Recorder
	r.RecordWindow(WindowRecord{Window: 1})
	r.RecordEvent(obs.Event{Type: "alarm"})
	if p := r.TryDump("alarm"); p != "" {
		t.Fatal("nil recorder dumped")
	}
	if _, err := r.Dump("alarm"); err == nil {
		t.Fatal("nil recorder Dump did not error")
	}
	if snap := r.Snapshot(); len(snap.Windows) != 0 {
		t.Fatal("nil recorder snapshot not empty")
	}
	r.Watch(context.Background(), nil) // returns immediately
	r.DumpOnPanic()                    // no-op when not panicking
}

func TestWatchDumpsOnTrigger(t *testing.T) {
	dir := t.TempDir()
	bus := obs.NewBus()
	r := testRecorder(t, Config{Dir: dir})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Watch(ctx, bus, "alarm")
	}()
	// Wait for the subscription before publishing.
	deadline := time.After(2 * time.Second)
	for !bus.Active() {
		select {
		case <-deadline:
			t.Fatal("watcher never subscribed")
		case <-time.After(time.Millisecond):
		}
	}
	bus.Publish(obs.Event{Type: "window", Window: 1})
	bus.Publish(obs.Event{Type: "alarm", Sample: "rootkit_001", Window: 2})
	var files []string
	deadline = time.After(2 * time.Second)
	for len(files) == 0 {
		select {
		case <-deadline:
			t.Fatal("no incident written for alarm event")
		case <-time.After(5 * time.Millisecond):
			files, _ = filepath.Glob(filepath.Join(dir, "incident-*.json"))
		}
	}
	if !strings.Contains(files[0], "-alarm.json") {
		t.Fatalf("incident file = %v", files)
	}
	var inc Incident
	data, _ := os.ReadFile(files[0])
	if err := json.Unmarshal(data, &inc); err != nil {
		t.Fatal(err)
	}
	// The watcher records events into the ring before dumping, so the
	// non-trigger "window" event is in the incident too.
	if len(inc.Events) < 2 || inc.Events[0].Type != "window" || inc.Events[1].Type != "alarm" {
		t.Fatalf("incident events = %+v", inc.Events)
	}
	cancel()
	<-done
}

func TestDumpOnPanic(t *testing.T) {
	dir := t.TempDir()
	r := testRecorder(t, Config{Dir: dir})
	r.RecordWindow(WindowRecord{Window: 7})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("DumpOnPanic swallowed the panic")
			}
		}()
		defer r.DumpOnPanic()
		panic("kernel took the counters away")
	}()
	files, _ := filepath.Glob(filepath.Join(dir, "incident-*-panic.json"))
	if len(files) != 1 {
		t.Fatalf("panic incidents = %v", files)
	}
	var inc Incident
	data, _ := os.ReadFile(files[0])
	if err := json.Unmarshal(data, &inc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(inc.Stack, "kernel took the counters away") ||
		!strings.Contains(inc.Stack, "goroutine") {
		t.Fatalf("panic stack missing: %q", inc.Stack)
	}
	if len(inc.Windows) != 1 || inc.Windows[0].Window != 7 {
		t.Fatalf("panic incident windows = %+v", inc.Windows)
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"alarm":                  "alarm",
		"alert-FPR High!":        "alert-fpr-high-",
		"":                       "incident",
		"a/b\\c..d":              "a-b-c--d",
		strings.Repeat("x", 100): strings.Repeat("x", 48),
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestManifestEmbedded(t *testing.T) {
	m := obs.NewManifest("hpcmal", "serve")
	m.Config["model"] = "bayes"
	r := testRecorder(t, Config{Manifest: m})
	path, err := r.Dump("alarm")
	if err != nil {
		t.Fatal(err)
	}
	var inc Incident
	data, _ := os.ReadFile(path)
	if err := json.Unmarshal(data, &inc); err != nil {
		t.Fatal(err)
	}
	if inc.Manifest == nil || inc.Manifest.Command != "serve" || inc.Manifest.Config["model"] != "bayes" {
		t.Fatalf("manifest = %+v", inc.Manifest)
	}
}

// TestHistoryHook pins the pre-trigger-history contract: when
// Config.History is wired (serve points it at the tsdb store), its
// payload is embedded in both dumps and snapshots; without it the
// history field is absent from the JSON entirely.
func TestHistoryHook(t *testing.T) {
	r := testRecorder(t, Config{History: func() any {
		return map[string]any{"from_ms": 1000, "series": map[string]any{"quality.f1": []float64{0.9, 0.8}}}
	}})
	path, err := r.Dump("alarm")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var inc Incident
	if err := json.Unmarshal(data, &inc); err != nil {
		t.Fatal(err)
	}
	h, ok := inc.History.(map[string]any)
	if !ok || h["from_ms"] != float64(1000) {
		t.Fatalf("dump history = %#v", inc.History)
	}
	if snap := r.Snapshot(); snap.History == nil {
		t.Fatal("snapshot missing history")
	}

	// No hook: the field is omitted, not null.
	bare := testRecorder(t, Config{})
	p2, err := bare.Dump("alarm")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `"history"`) {
		t.Fatalf("unwired history serialized: %s", raw)
	}
}

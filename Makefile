# Developer entry points. The repo needs only the Go toolchain.

BENCHTIME ?= 10x

.PHONY: build test race bench bench-baseline bench-diff serve top

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# bench runs every benchmark (one per paper table/figure plus the
# engine microbenches) and normalizes the output to bench.json for
# diffing against the committed BENCH_baseline.json.
bench:
	go test -bench=. -benchmem -benchtime=$(BENCHTIME) ./... | go run ./cmd/benchjson -o bench.json

# bench-baseline refreshes the committed perf trajectory seed. Run on a
# quiet machine and commit the result together with the change that
# moved the numbers.
bench-baseline:
	go test -bench=. -benchmem -benchtime=$(BENCHTIME) ./... | go run ./cmd/benchjson -o BENCH_baseline.json

# bench-diff is the perf regression gate: rerun the suite and fail if
# any benchmark shared with BENCH_baseline.json slowed by more than 20%
# ns/op (override with THRESHOLD=N).
THRESHOLD ?= 20
bench-diff:
	go test -bench=. -benchmem -benchtime=$(BENCHTIME) ./... | go run ./cmd/benchjson -diff BENCH_baseline.json -threshold $(THRESHOLD)

# serve runs the online detector daemon with live telemetry on :9090
# (browse http://127.0.0.1:9090/dashboard for the live dashboard).
serve:
	go run ./cmd/hpcmal serve -listen 127.0.0.1:9090

# top attaches the terminal dashboard to the serve daemon above.
top:
	go run ./cmd/hpcmal top -addr 127.0.0.1:9090

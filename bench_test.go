// Package repro's benchmark harness: one benchmark per table and figure
// of the paper's evaluation (see DESIGN.md's experiment index), plus the
// design-choice ablations. Each benchmark regenerates the corresponding
// artifact at a reduced dataset scale and reports the headline measured
// quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// prints the full reproduction alongside timing. For the full-scale runs
// recorded in EXPERIMENTS.md use `go run ./cmd/hpcmal repro all`.
package repro_test

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/ml"
	"repro/internal/ml/eval"
	"repro/internal/parallel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchConfig keeps benchmark iterations affordable: ~3% of the paper's
// database with shortened traces.
func benchConfig() experiments.Config {
	return experiments.Config{
		Seed:  1,
		Scale: 0.03,
		Trace: trace.Config{WindowsPerSample: 8, SimInstrPerSlice: 800, Multiplex: true},
	}
}

// sharedRunner reuses one generated dataset across benchmarks that do not
// regenerate data themselves, mirroring the paper's single database.
var (
	runnerOnce   sync.Once
	sharedRunner *experiments.Runner
)

func getRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	runnerOnce.Do(func() {
		sharedRunner = experiments.NewRunner(experiments.WithConfig(benchConfig()))
	})
	if _, err := sharedRunner.Dataset(); err != nil {
		b.Fatal(err)
	}
	return sharedRunner
}

// cellPct parses a "93.5%" cell into 93.5.
func cellPct(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		b.Fatalf("bad percent cell %q: %v", s, err)
	}
	return v
}

// runExperiment runs one experiment b.N times and returns the last report.
func runExperiment(b *testing.B, id string) *experiments.Report {
	b.Helper()
	r := getRunner(b)
	b.ResetTimer()
	var rep *experiments.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = r.Run(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	return rep
}

func BenchmarkTable1_DatasetGeneration(b *testing.B) {
	// This one measures generation itself: fresh runner per iteration.
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(experiments.WithConfig(cfg))
		rep, err := r.Table1()
		if err != nil {
			b.Fatal(err)
		}
		total, err := strconv.Atoi(rep.Rows[len(rep.Rows)-1][3])
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(total), "rows")
	}
}

func BenchmarkTable2_PCAFeatureSelection(b *testing.B) {
	rep := runExperiment(b, "table2")
	if len(rep.Rows) != 8 {
		b.Fatalf("table2 rows %d", len(rep.Rows))
	}
}

func BenchmarkFig6_ClassDistribution(b *testing.B) {
	rep := runExperiment(b, "fig6")
	if len(rep.Rows) != 6 {
		b.Fatalf("fig6 rows %d", len(rep.Rows))
	}
}

func BenchmarkFig9to12_PCAProjection(b *testing.B) {
	rep := runExperiment(b, "pcaplots")
	// Report the mean separation ratio across the four families.
	sum := 0.0
	for _, row := range rep.Rows {
		v, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			b.Fatal(err)
		}
		sum += v
	}
	b.ReportMetric(sum/float64(len(rep.Rows)), "sep_ratio")
}

func BenchmarkFig13_BinaryAccuracy(b *testing.B) {
	rep := runExperiment(b, "fig13")
	// Report the mean accuracy at 8 features across all classifiers.
	sum := 0.0
	for _, row := range rep.Rows {
		sum += cellPct(b, row[2])
	}
	b.ReportMetric(sum/float64(len(rep.Rows)), "mean_acc8_%")
}

func BenchmarkFig14_Area(b *testing.B) {
	rep := runExperiment(b, "fig14")
	var oner, mlp float64
	for _, row := range rep.Rows {
		v, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			b.Fatal(err)
		}
		switch row[0] {
		case "OneR":
			oner = v
		case "MLP":
			mlp = v
		}
	}
	if oner == 0 || mlp == 0 {
		b.Fatal("missing classifiers in fig14")
	}
	b.ReportMetric(mlp/oner, "mlp_vs_oner_area_x")
}

func BenchmarkFig15_Latency(b *testing.B) {
	rep := runExperiment(b, "fig15")
	var mlpCycles float64
	for _, row := range rep.Rows {
		if row[0] == "MLP" {
			v, err := strconv.ParseFloat(row[1], 64)
			if err != nil {
				b.Fatal(err)
			}
			mlpCycles = v
		}
	}
	b.ReportMetric(mlpCycles, "mlp_cycles")
}

func BenchmarkFig16_AccuracyPerArea(b *testing.B) {
	rep := runExperiment(b, "fig16")
	// The winner (first row after sorting) should be a rule classifier.
	best := rep.Rows[0][0]
	if best != "OneR" && best != "JRip" && best != "REPTree" && best != "J48" &&
		best != "Logistic" && best != "SVM" {
		b.Logf("note: accuracy/area winner is %s", best)
	}
	v, err := strconv.ParseFloat(rep.Rows[0][3], 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(v, "best_acc_per_kLUT")
}

func BenchmarkFig17_MulticlassAccuracy(b *testing.B) {
	rep := runExperiment(b, "fig17")
	sum := 0.0
	for _, row := range rep.Rows {
		sum += cellPct(b, row[1])
	}
	b.ReportMetric(sum/float64(len(rep.Rows)), "mean_multiclass_%")
}

func BenchmarkFig18_PerClassAccuracy(b *testing.B) {
	rep := runExperiment(b, "fig18")
	if len(rep.Rows) != 3 || len(rep.Rows[0]) != 7 {
		b.Fatalf("fig18 shape %dx%d", len(rep.Rows), len(rep.Rows[0]))
	}
}

func BenchmarkFig19_PCAAssistedMLR(b *testing.B) {
	rep := runExperiment(b, "fig19")
	last := rep.Rows[len(rep.Rows)-1]
	delta := cellPct(b, last[2]) - cellPct(b, last[1])
	b.ReportMetric(delta, "pca_assist_delta_%")
}

func benchAblation(b *testing.B, id string) *experiments.Report {
	b.Helper()
	r := getRunner(b)
	b.ResetTimer()
	var rep *experiments.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = r.RunAblation(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	return rep
}

func BenchmarkAblation_Multiplexing(b *testing.B) {
	rep := benchAblation(b, "ablate-multiplex")
	delta := cellPct(b, rep.Rows[0][1]) - cellPct(b, rep.Rows[1][1])
	b.ReportMetric(delta, "mux_cost_%")
}

func BenchmarkAblation_SamplingPeriod(b *testing.B) {
	rep := benchAblation(b, "ablate-period")
	if len(rep.Rows) != 3 {
		b.Fatalf("period sweep rows %d", len(rep.Rows))
	}
}

func BenchmarkAblation_GlobalVsCustomFeatures(b *testing.B) {
	rep := benchAblation(b, "ablate-custom")
	delta := cellPct(b, rep.Rows[1][1]) - cellPct(b, rep.Rows[0][1])
	b.ReportMetric(delta, "custom_delta_%")
}

func BenchmarkAblation_IsolationNoise(b *testing.B) {
	rep := benchAblation(b, "ablate-noise")
	delta := cellPct(b, rep.Rows[0][1]) - cellPct(b, rep.Rows[len(rep.Rows)-1][1])
	b.ReportMetric(delta, "isolation_gain_%")
}

func benchExtension(b *testing.B, id string) *experiments.Report {
	b.Helper()
	r := getRunner(b)
	b.ResetTimer()
	var rep *experiments.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = r.RunExtension(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	return rep
}

func BenchmarkExtension_Ensemble(b *testing.B) {
	rep := benchExtension(b, "ext-ensemble")
	if len(rep.Rows) != 6 {
		b.Fatalf("ensemble rows %d", len(rep.Rows))
	}
	// Report the best ensemble accuracy.
	best := 0.0
	for _, row := range rep.Rows[1:] {
		if v := cellPct(b, row[1]); v > best {
			best = v
		}
	}
	b.ReportMetric(best, "best_ensemble_acc_%")
}

func BenchmarkExtension_Anomaly(b *testing.B) {
	rep := benchExtension(b, "ext-anomaly")
	v, err := strconv.ParseFloat(rep.Rows[0][1], 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(v, "mahalanobis_auc")
}

func BenchmarkExtension_OnlineDetection(b *testing.B) {
	rep := benchExtension(b, "ext-online")
	// Mean malware detect rate across the five families.
	sum, n := 0.0, 0
	for _, row := range rep.Rows {
		if row[0] == "benign" {
			continue
		}
		sum += cellPct(b, row[1])
		n++
	}
	b.ReportMetric(sum/float64(n), "mean_detect_rate_%")
}

func BenchmarkExtension_FeatureAgreement(b *testing.B) {
	rep := benchExtension(b, "ext-features")
	if len(rep.Rows) != 5 {
		b.Fatalf("feature agreement rows %d", len(rep.Rows))
	}
}

func BenchmarkExtension_LearningCurve(b *testing.B) {
	rep := benchExtension(b, "ext-learncurve")
	if len(rep.Rows) != 3 {
		b.Fatalf("learning curve rows %d", len(rep.Rows))
	}
}

func BenchmarkExtension_Quantization(b *testing.B) {
	rep := benchExtension(b, "ext-quant")
	// Agreement at 12 dropped bits.
	for _, row := range rep.Rows {
		if row[0] == "12" {
			b.ReportMetric(cellPct(b, row[2]), "agree_at_12bits_%")
		}
	}
}

// ---------------------------------------------------------------------
// Serial vs parallel engine benchmarks. Each pair runs the same workload
// at 1 worker and at benchWorkers, so
//
//	go test -bench=Parallel -benchtime=3x
//
// prints the measured speedup of the three hot paths the -parallel flag
// bounds: container generation, 10-fold CV, and per-family MLP training.
// The outputs are bit-identical across the pair (see determinism_test.go);
// only wall time may differ.

const benchWorkers = 4

// benchGenConfig is the generation workload for the serial/parallel pair.
func benchGenConfig(workers int) dataset.GenConfig {
	counts := map[workload.Class]int{}
	for _, c := range workload.AllClasses() {
		counts[c] = 4
	}
	return dataset.GenConfig{
		Trace:           benchConfig().Trace,
		SamplesPerClass: counts,
		Seed:            1,
		Parallelism:     workers,
	}
}

func benchGenerate(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.Generate(benchGenConfig(workers)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelGen_Serial(b *testing.B)   { benchGenerate(b, 1) }
func BenchmarkParallelGen_Parallel(b *testing.B) { benchGenerate(b, benchWorkers) }

// benchRows caches one feature matrix + binary labels for the CV and MLP
// training benchmarks.
var benchRowsOnce = sync.OnceValues(func() (*dataset.Table, error) {
	return dataset.Generate(benchGenConfig(0))
})

func benchTable(b *testing.B) *dataset.Table {
	b.Helper()
	tbl, err := benchRowsOnce()
	if err != nil {
		b.Fatal(err)
	}
	return tbl
}

func benchCV10(b *testing.B, workers int) {
	b.Helper()
	tbl := benchTable(b)
	rows := make([][]float64, len(tbl.Instances))
	for i := range tbl.Instances {
		rows[i] = tbl.Instances[i].Features
	}
	labels := tbl.BinaryLabels()
	factory := func() ml.Classifier {
		c, err := core.NewClassifier("J48", 1)
		if err != nil {
			panic(err)
		}
		return c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.CrossValidate(factory, rows, labels, 2, 10, 1,
			eval.CVWorkers(workers))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Accuracy()*100, "cv_acc_%")
	}
}

func BenchmarkParallelCV10_Serial(b *testing.B)   { benchCV10(b, 1) }
func BenchmarkParallelCV10_Parallel(b *testing.B) { benchCV10(b, benchWorkers) }

// benchMLPTrain trains one binary family-vs-benign MLP per malware
// family, fanned out on the engine — the per-classifier training pattern
// the figure runners use.
func benchMLPTrain(b *testing.B, workers int) {
	b.Helper()
	tbl := benchTable(b)
	families := workload.MalwareClasses()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		accs, err := parallel.Map(
			parallel.Options{Workers: workers},
			len(families), func(f int) (float64, error) {
				sub := tbl.FilterClasses(workload.Benign, families[f])
				rows := make([][]float64, len(sub.Instances))
				for j := range sub.Instances {
					rows[j] = sub.Instances[j].Features
				}
				labels := sub.BinaryLabels()
				clf, err := core.NewClassifier("MLP", 1)
				if err != nil {
					return 0, err
				}
				if err := clf.Train(rows, labels, 2); err != nil {
					return 0, err
				}
				correct := 0
				for j, row := range rows {
					if clf.Predict(row) == labels[j] {
						correct++
					}
				}
				return float64(correct) / float64(len(rows)), nil
			})
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, a := range accs {
			sum += a
		}
		b.ReportMetric(100*sum/float64(len(accs)), "mean_train_acc_%")
	}
}

func BenchmarkParallelMLPTrain_Serial(b *testing.B)   { benchMLPTrain(b, 1) }
func BenchmarkParallelMLPTrain_Parallel(b *testing.B) { benchMLPTrain(b, benchWorkers) }

func BenchmarkExtension_KNNHardwareCost(b *testing.B) {
	rep := benchExtension(b, "ext-knn")
	if len(rep.Rows) != 2 {
		b.Fatalf("knn rows %d", len(rep.Rows))
	}
	knnLUT, err := strconv.ParseFloat(rep.Rows[0][2], 64)
	if err != nil {
		b.Fatal(err)
	}
	j48LUT, err := strconv.ParseFloat(rep.Rows[1][2], 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(knnLUT/j48LUT, "knn_vs_j48_area_x")
}
